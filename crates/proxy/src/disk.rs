//! The proxy's crash-safe persistent disk tier (DESIGN.md §10).
//!
//! A path-per-document store beneath the sharded memory LRU: every
//! origin-fetched document is written through to
//! `<root>/<md5(url)>.doc`, and a restarted proxy re-opens the same root
//! and comes back *warm*. The design trades write-time ceremony for
//! read-time verification:
//!
//! * **No fsync, no temp-file rename.** A write goes straight to the
//!   final path. A crash mid-write leaves a torn file — and that is fine,
//!   because…
//! * **…every disk read is verified** before a byte is served: magic,
//!   lengths, the stored URL, the MD5 digest, and the §6.1 watermark
//!   signature must all check out. A torn, truncated, or bit-flipped file
//!   fails verification, is deleted on the spot (self-heal), and the
//!   request falls through to the origin path — wrong bytes are never
//!   served, exactly the browser-side `410 Gone` discipline.
//! * **TTL freshness + revalidation** replaces the memory tier's implicit
//!   fresh-until-invalidated model: a disk entry older than its TTL is
//!   not served directly; the proxy revalidates it against the origin
//!   with a conditional `If-Digest` GET (`304 Not Modified` refreshes the
//!   stamp for the cost of a header exchange).
//!
//! Lock discipline matches the rest of the proxy: the in-memory index
//! (interner + byte-budgeted LRU + per-entry metadata) lives behind one
//! mutex, and **no file I/O ever happens while it is held** — lookups
//! copy the metadata out, writes prepare the full file image first.
//! Concurrent writers to the same URL can interleave (the OS gives no
//! atomicity promise for overlapping writes); a torn result is caught by
//! the same read-time verification and self-heals.

use crate::protocol::Body;
use crate::store::CachedDoc;
use baps_cache::ByteLru;
use baps_crypto::{md5::md5, verify_document, PublicKey, Watermark};
use baps_trace::Interner;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// File-format magic: "BAPS DisK v01". Bump the trailing digits on any
/// layout change; old files then fail verification and self-heal.
const MAGIC: &[u8; 8] = b"BAPSDK01";
/// Fixed header: magic(8) + url_len(4) + body_len(8) + stored_at(8) +
/// ttl_secs(8) + md5(16) + watermark(32).
const HEADER_LEN: usize = 84;
/// Byte offset of the `stored_at` stamp, re-written in place on
/// revalidation.
const STORED_AT_OFFSET: u64 = 20;

/// Disk-tier configuration.
#[derive(Debug, Clone)]
pub struct DiskConfig {
    /// Directory holding the document files (created if absent). Point a
    /// restarted proxy at the same root to come back warm.
    pub root: PathBuf,
    /// Capacity in body bytes (LRU-evicted beyond this).
    pub capacity: u64,
    /// Freshness lifetime of a disk entry. Entries older than this are
    /// revalidated against the origin before being served.
    pub default_ttl: Duration,
}

/// A verified document read from the disk tier.
pub struct DiskHit {
    /// The document, watermark included (verified against the proxy key).
    pub doc: CachedDoc,
    /// Lowercase MD5 hex of the body — the `If-Digest` value for
    /// revalidation.
    pub digest_hex: String,
    /// Whether the entry is within its TTL. Stale entries must be
    /// revalidated before serving.
    pub fresh: bool,
}

/// Point-in-time snapshot of the disk tier's counters and occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Documents currently stored.
    pub entries: u64,
    /// Body bytes currently stored (header overhead excluded, matching
    /// [`CachedDoc::byte_size`] so memory and disk gauges are comparable).
    pub bytes: u64,
    /// Reads that returned a verified, fresh document.
    pub hits: u64,
    /// Reads that returned a verified but TTL-expired document (the
    /// caller revalidates).
    pub stale: u64,
    /// Reads that found nothing under the URL.
    pub misses: u64,
    /// Documents written through to disk.
    pub writes: u64,
    /// Body bytes written through to disk.
    pub write_bytes: u64,
    /// Corrupt or torn files detected by read-time verification and
    /// deleted (self-heals). Also counts unreadable files dropped at
    /// [`DiskTier::open`].
    pub heals: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Write or delete attempts that failed at the filesystem level
    /// (the tier degrades to a smaller cache, never to an error).
    pub io_errors: u64,
}

#[derive(Debug, Clone, Copy)]
struct Meta {
    size: u64,
    stored_at: u64,
    ttl_secs: u64,
}

/// In-memory picture of what is on disk: URL interner, byte-budgeted LRU,
/// and per-entry metadata. File I/O never happens under this lock.
struct DiskIndex {
    urls: Interner,
    lru: ByteLru<u32>,
    meta: HashMap<u32, Meta>,
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    stale: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    write_bytes: AtomicU64,
    heals: AtomicU64,
    evictions: AtomicU64,
    io_errors: AtomicU64,
}

/// The persistent disk tier. See the module docs for the design.
pub struct DiskTier {
    root: PathBuf,
    key: PublicKey,
    default_ttl: Duration,
    inner: Mutex<DiskIndex>,
    counters: Counters,
}

impl DiskTier {
    /// Opens (or creates) the tier rooted at `config.root`, scanning any
    /// existing document files so a restarted proxy starts warm. Files
    /// whose headers do not parse are deleted during the scan; body
    /// verification is deferred to first read, so opening stays cheap.
    /// Surviving entries enter the LRU oldest-first, so the byte budget
    /// evicts the oldest documents if the capacity shrank.
    pub fn open(config: DiskConfig, key: PublicKey) -> io::Result<DiskTier> {
        fs::create_dir_all(&config.root)?;
        let tier = DiskTier {
            root: config.root,
            key,
            default_ttl: config.default_ttl,
            inner: Mutex::new(DiskIndex {
                urls: Interner::new(),
                lru: ByteLru::new(config.capacity),
                meta: HashMap::new(),
            }),
            counters: Counters::default(),
        };
        let mut found: Vec<(String, Meta)> = Vec::new();
        for entry in fs::read_dir(&tier.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("doc") {
                continue;
            }
            match read_header(&path) {
                Ok((url, meta)) => found.push((url, meta)),
                Err(_) => {
                    // Unparseable header (torn write mid-crash, stray
                    // file): drop it now rather than on first read.
                    tier.counters.heals.fetch_add(1, Ordering::Relaxed);
                    let _ = fs::remove_file(&path);
                }
            }
        }
        found.sort_by_key(|(_, m)| m.stored_at);
        {
            let mut inner = tier.inner.lock();
            for (url, meta) in found {
                let id = inner.urls.intern(&url);
                let out = inner.lru.insert(id, meta.size);
                for (victim, _) in out.evicted {
                    inner.meta.remove(&victim);
                    // Deleting under the lock would break the discipline;
                    // collect instead. (Rare: only on a shrunk capacity.)
                }
                if out.admitted {
                    inner.meta.insert(id, meta);
                }
            }
            // Files for entries the budget rejected are deleted below.
        }
        // Second pass outside the lock: remove files not in the index.
        let keep: std::collections::HashSet<PathBuf> = {
            let inner = tier.inner.lock();
            inner
                .meta
                .keys()
                .filter_map(|&id| inner.urls.name(id).map(|u| entry_path(&tier.root, u)))
                .collect()
        };
        for entry in fs::read_dir(&tier.root)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("doc") && !keep.contains(&path) {
                tier.counters.evictions.fetch_add(1, Ordering::Relaxed);
                let _ = fs::remove_file(&path);
            }
        }
        Ok(tier)
    }

    /// Looks up `url`, verifying the file end to end (magic, lengths,
    /// URL, MD5 digest, watermark signature). Returns `None` on a miss
    /// *or* on any verification failure — in the latter case the file is
    /// deleted and the entry dropped, so a torn write self-heals to the
    /// origin path instead of ever serving wrong bytes.
    pub fn load(&self, url: &str) -> Option<DiskHit> {
        let meta = {
            let mut inner = self.inner.lock();
            let id = inner.urls.get(url);
            match id {
                Some(id) if inner.lru.touch(&id).is_some() => *inner.meta.get(&id)?,
                _ => {
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
        };
        // File I/O strictly outside the lock.
        let path = entry_path(&self.root, url);
        match read_verified(&path, url, &self.key) {
            Ok(doc) => {
                let digest_hex = md5(&doc.body).to_hex();
                let fresh = now_unix() < meta.stored_at.saturating_add(meta.ttl_secs);
                if fresh {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.counters.stale.fetch_add(1, Ordering::Relaxed);
                }
                Some(DiskHit {
                    doc,
                    digest_hex,
                    fresh,
                })
            }
            Err(_) => {
                // Verification failed: self-heal by dropping the entry.
                self.counters.heals.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                if fs::remove_file(&path).is_err() {
                    self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
                }
                let mut inner = self.inner.lock();
                if let Some(id) = inner.urls.get(url) {
                    inner.lru.remove(&id);
                    inner.meta.remove(&id);
                }
                None
            }
        }
    }

    /// Writes `doc` through to disk under `url` with the default TTL.
    /// Best-effort: a filesystem error shrinks the tier (counted in
    /// [`DiskStats::io_errors`]) but never fails the request.
    pub fn store(&self, url: &str, doc: &CachedDoc) {
        let size = doc.byte_size();
        let meta = Meta {
            size,
            stored_at: now_unix(),
            ttl_secs: self.default_ttl.as_secs(),
        };
        // Prepare the complete file image, then write it outside the
        // lock. No fsync and no rename: a crash mid-write leaves a file
        // that fails read-time verification and self-heals.
        let path = entry_path(&self.root, url);
        if fs::write(&path, encode_entry(url, doc, &meta)).is_err() {
            self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(&path);
            return;
        }
        let (admitted, evicted) = {
            let mut inner = self.inner.lock();
            let id = inner.urls.intern(url);
            let out = inner.lru.insert(id, size);
            let evicted: Vec<PathBuf> = out
                .evicted
                .iter()
                .filter(|(victim, _)| *victim != id)
                .filter_map(|(victim, _)| {
                    inner.meta.remove(victim);
                    inner.urls.name(*victim).map(|u| entry_path(&self.root, u))
                })
                .collect();
            if out.admitted {
                inner.meta.insert(id, meta);
            } else {
                inner.meta.remove(&id);
            }
            (out.admitted, evicted)
        };
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.counters.write_bytes.fetch_add(size, Ordering::Relaxed);
        self.counters
            .evictions
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        // Victim files are deleted after the lock is released.
        for victim in evicted {
            if fs::remove_file(&victim).is_err() {
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if !admitted {
            // Too large for the budget: drop the file we just wrote.
            let _ = fs::remove_file(&path);
        }
    }

    /// Re-stamps `url` as freshly validated (after a `304 Not Modified`
    /// from the origin): the `stored_at` field is rewritten in place, so
    /// a revalidation costs eight bytes of I/O, not a full rewrite.
    pub fn refresh(&self, url: &str) {
        let now = now_unix();
        {
            let mut inner = self.inner.lock();
            let Some(id) = inner.urls.get(url) else {
                return;
            };
            let Some(meta) = inner.meta.get_mut(&id) else {
                return;
            };
            meta.stored_at = now;
        }
        let path = entry_path(&self.root, url);
        let stamp = (|| -> io::Result<()> {
            let mut file = fs::OpenOptions::new().write(true).open(&path)?;
            file.seek(SeekFrom::Start(STORED_AT_OFFSET))?;
            file.write_all(&now.to_le_bytes())
        })();
        if stamp.is_err() {
            self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Expires `url` in place: the entry is kept (bytes, digest and
    /// watermark stay valid) but its `stored_at` is stamped to zero, so
    /// the next read sees it stale and must revalidate against the origin
    /// with `If-Digest` before serving. This is the invalidation-storm
    /// path: a publisher update must force a revalidation, but an
    /// unchanged document should still come back as a cheap `304` rather
    /// than a refetch. Returns whether an entry was expired.
    pub fn expire(&self, url: &str) -> bool {
        {
            let mut inner = self.inner.lock();
            let Some(id) = inner.urls.get(url) else {
                return false;
            };
            let Some(meta) = inner.meta.get_mut(&id) else {
                return false;
            };
            meta.stored_at = 0;
        }
        let path = entry_path(&self.root, url);
        let stamp = (|| -> io::Result<()> {
            let mut file = fs::OpenOptions::new().write(true).open(&path)?;
            file.seek(SeekFrom::Start(STORED_AT_OFFSET))?;
            file.write_all(&0u64.to_le_bytes())
        })();
        if stamp.is_err() {
            self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// Drops `url` from the tier (e.g. the origin 404'd a revalidation:
    /// the document is gone and the stale copy must not outlive it).
    /// Returns whether an entry was removed.
    pub fn remove(&self, url: &str) -> bool {
        let removed = {
            let mut inner = self.inner.lock();
            match inner.urls.get(url) {
                Some(id) => {
                    let present = inner.lru.remove(&id).is_some();
                    inner.meta.remove(&id);
                    present
                }
                None => false,
            }
        };
        if removed {
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            if fs::remove_file(entry_path(&self.root, url)).is_err() {
                self.counters.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        removed
    }

    /// Documents currently stored.
    pub fn entries(&self) -> u64 {
        self.inner.lock().lru.len() as u64
    }

    /// Body bytes currently stored.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().lru.used()
    }

    /// Counter + occupancy snapshot.
    pub fn stats(&self) -> DiskStats {
        let (entries, bytes) = {
            let inner = self.inner.lock();
            (inner.lru.len() as u64, inner.lru.used())
        };
        DiskStats {
            entries,
            bytes,
            hits: self.counters.hits.load(Ordering::Relaxed),
            stale: self.counters.stale.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            write_bytes: self.counters.write_bytes.load(Ordering::Relaxed),
            heals: self.counters.heals.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            io_errors: self.counters.io_errors.load(Ordering::Relaxed),
        }
    }

    /// The directory this tier stores documents under.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

/// The file a document is stored under: `<root>/<md5(url)>.doc`. Exposed
/// so crash tests can corrupt a specific entry the way a torn write
/// would.
pub fn entry_path(root: &Path, url: &str) -> PathBuf {
    root.join(format!("{}.doc", md5(url.as_bytes()).to_hex()))
}

fn now_unix() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Serializes one document file: fixed header, then URL, then body.
fn encode_entry(url: &str, doc: &CachedDoc, meta: &Meta) -> Vec<u8> {
    let url_bytes = url.as_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + url_bytes.len() + doc.body.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(url_bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&(doc.body.len() as u64).to_le_bytes());
    out.extend_from_slice(&meta.stored_at.to_le_bytes());
    out.extend_from_slice(&meta.ttl_secs.to_le_bytes());
    out.extend_from_slice(&md5(&doc.body).0);
    out.extend_from_slice(&doc.watermark.to_bytes());
    out.extend_from_slice(url_bytes);
    out.extend_from_slice(&doc.body);
    out
}

/// Parses only the fixed header and URL of a document file (the cheap
/// open-time scan). Checks the magic and that the file length matches the
/// recorded lengths exactly — a truncated (torn) file fails here.
fn read_header(path: &Path) -> io::Result<(String, Meta)> {
    let mut file = fs::File::open(path)?;
    let actual_len = file.metadata()?.len();
    let mut header = [0u8; HEADER_LEN];
    file.read_exact(&mut header)?;
    let (url_len, body_len, meta) = parse_header(&header)?;
    if actual_len != (HEADER_LEN + url_len) as u64 + body_len {
        return Err(bad("file length does not match header"));
    }
    let mut url_bytes = vec![0u8; url_len];
    file.read_exact(&mut url_bytes)?;
    let url = String::from_utf8(url_bytes).map_err(|_| bad("URL is not UTF-8"))?;
    Ok((
        url,
        Meta {
            size: body_len,
            ..meta
        },
    ))
}

fn parse_header(header: &[u8; HEADER_LEN]) -> io::Result<(usize, u64, Meta)> {
    if &header[..8] != MAGIC {
        return Err(bad("bad magic"));
    }
    let url_len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
    let body_len = u64::from_le_bytes(header[12..20].try_into().unwrap());
    let stored_at = u64::from_le_bytes(header[20..28].try_into().unwrap());
    let ttl_secs = u64::from_le_bytes(header[28..36].try_into().unwrap());
    if body_len > crate::protocol::MAX_BODY as u64 {
        return Err(bad("body length exceeds protocol maximum"));
    }
    Ok((
        url_len,
        body_len,
        Meta {
            size: body_len,
            stored_at,
            ttl_secs,
        },
    ))
}

/// Reads and fully verifies one document file. Every failure mode — short
/// file, wrong magic, URL mismatch (hash collision or renamed file),
/// digest mismatch, bad watermark signature — comes back as an error so
/// the caller can self-heal.
fn read_verified(path: &Path, url: &str, key: &PublicKey) -> io::Result<CachedDoc> {
    let bytes = fs::read(path)?;
    if bytes.len() < HEADER_LEN {
        return Err(bad("file shorter than header"));
    }
    let header: &[u8; HEADER_LEN] = bytes[..HEADER_LEN].try_into().unwrap();
    let (url_len, body_len, _) = parse_header(header)?;
    let expect_len = (HEADER_LEN + url_len) as u64 + body_len;
    if bytes.len() as u64 != expect_len {
        return Err(bad("file length does not match header"));
    }
    let stored_url = &bytes[HEADER_LEN..HEADER_LEN + url_len];
    if stored_url != url.as_bytes() {
        return Err(bad("stored URL does not match"));
    }
    let digest: [u8; 16] = header[36..52].try_into().unwrap();
    let watermark =
        Watermark::from_bytes(&header[52..84]).map_err(|_| bad("unparseable watermark"))?;
    let body: Body = bytes[HEADER_LEN + url_len..].to_vec().into();
    if md5(&body).0 != digest {
        return Err(bad("digest mismatch"));
    }
    // The watermark signature binds the body to the proxy's key — the
    // same end-to-end check browsers run, applied at the disk boundary.
    verify_document(key, &body, &watermark).map_err(|_| bad("watermark verification failed"))?;
    Ok(CachedDoc { body, watermark })
}

fn bad(why: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why)
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_crypto::ProxySigner;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn signer() -> ProxySigner {
        ProxySigner::generate(&mut StdRng::seed_from_u64(0xd15c))
    }

    fn doc(signer: &ProxySigner, body: &[u8]) -> CachedDoc {
        CachedDoc {
            body: body.into(),
            watermark: signer.watermark(body),
        }
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("baps-disk-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn tier(root: &Path, capacity: u64, ttl: Duration, key: PublicKey) -> DiskTier {
        DiskTier::open(
            DiskConfig {
                root: root.to_path_buf(),
                capacity,
                default_ttl: ttl,
            },
            key,
        )
        .unwrap()
    }

    #[test]
    fn store_load_roundtrip_fresh() {
        let sg = signer();
        let root = temp_root("roundtrip");
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        let d = doc(&sg, b"persistent body");
        t.store("http://origin/doc/1", &d);
        let hit = t.load("http://origin/doc/1").expect("stored entry loads");
        assert_eq!(&hit.doc.body[..], b"persistent body");
        assert_eq!(hit.doc.watermark, d.watermark);
        assert!(hit.fresh);
        assert_eq!(hit.digest_hex, md5(b"persistent body").to_hex());
        let s = t.stats();
        assert_eq!((s.entries, s.bytes), (1, 15));
        assert_eq!((s.hits, s.misses, s.writes), (1, 0, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_url_is_a_miss() {
        let sg = signer();
        let root = temp_root("miss");
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        assert!(t.load("http://origin/doc/none").is_none());
        assert_eq!(t.stats().misses, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_is_warm() {
        let sg = signer();
        let root = temp_root("reopen");
        {
            let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
            t.store("http://origin/doc/1", &doc(&sg, b"survives restart"));
        }
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        assert_eq!(t.entries(), 1);
        assert_eq!(t.bytes(), 16);
        let hit = t.load("http://origin/doc/1").expect("warm after reopen");
        assert_eq!(&hit.doc.body[..], b"survives restart");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn ttl_expiry_marks_stale() {
        let sg = signer();
        let root = temp_root("ttl");
        let t = tier(&root, 1 << 20, Duration::ZERO, sg.public_key());
        t.store("u", &doc(&sg, b"expires instantly"));
        let hit = t.load("u").expect("stale entries still load");
        assert!(!hit.fresh);
        assert_eq!(t.stats().stale, 1);
        // Refresh re-stamps it fresh (with the tier's TTL — still zero
        // here, so use a tier with a real TTL to see it flip).
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn refresh_restamps_fresh_and_survives_reopen() {
        let sg = signer();
        let root = temp_root("refresh");
        {
            let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
            t.store("u", &doc(&sg, b"revalidated"));
            // Age the entry on disk by rewriting its stamp to the epoch.
            let path = entry_path(&root, "u");
            let mut file = fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.seek(SeekFrom::Start(STORED_AT_OFFSET)).unwrap();
            file.write_all(&0u64.to_le_bytes()).unwrap();
        }
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        assert!(!t.load("u").unwrap().fresh, "aged entry reads stale");
        t.refresh("u");
        assert!(t.load("u").unwrap().fresh, "refresh re-stamps in memory");
        drop(t);
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        assert!(
            t.load("u").unwrap().fresh,
            "refresh re-stamped the file too"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_file_self_heals() {
        let sg = signer();
        let root = temp_root("torn");
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        t.store("u", &doc(&sg, b"this write will be torn apart"));
        let path = entry_path(&root, "u");
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 5]).unwrap();
        assert!(t.load("u").is_none(), "torn file must not serve");
        assert!(!path.exists(), "torn file is deleted");
        assert_eq!(t.stats().heals, 1);
        assert_eq!(t.entries(), 0);
        // The next store works normally.
        t.store("u", &doc(&sg, b"rewritten"));
        assert_eq!(&t.load("u").unwrap().doc.body[..], b"rewritten");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bitflip_fails_watermark_and_self_heals() {
        let sg = signer();
        let root = temp_root("bitflip");
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        t.store("u", &doc(&sg, b"integrity protected"));
        let path = entry_path(&root, "u");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01; // flip one body bit
        fs::write(&path, &bytes).unwrap();
        assert!(t.load("u").is_none(), "corrupted body must not serve");
        assert!(!path.exists());
        assert_eq!(t.stats().heals, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wrong_key_fails_verification() {
        let sg = signer();
        let other = ProxySigner::generate(&mut StdRng::seed_from_u64(999));
        let root = temp_root("wrongkey");
        {
            let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
            t.store("u", &doc(&sg, b"signed by sg"));
        }
        // Reopened under a different proxy key: the watermark no longer
        // verifies, so the entry self-heals instead of serving.
        let t = tier(
            &root,
            1 << 20,
            Duration::from_secs(3600),
            other.public_key(),
        );
        assert!(t.load("u").is_none());
        assert_eq!(t.stats().heals, 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn capacity_evicts_lru_and_deletes_files() {
        let sg = signer();
        let root = temp_root("evict");
        let t = tier(&root, 25, Duration::from_secs(3600), sg.public_key());
        t.store("u1", &doc(&sg, &[1u8; 10]));
        t.store("u2", &doc(&sg, &[2u8; 10]));
        t.load("u1"); // promote
        t.store("u3", &doc(&sg, &[3u8; 10])); // evicts u2
        assert!(t.load("u2").is_none());
        assert!(!entry_path(&root, "u2").exists(), "victim file deleted");
        assert!(t.load("u1").is_some());
        assert!(t.load("u3").is_some());
        let s = t.stats();
        assert_eq!((s.entries, s.bytes, s.evictions), (2, 20, 1));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn oversize_document_never_admitted() {
        let sg = signer();
        let root = temp_root("oversize");
        let t = tier(&root, 5, Duration::from_secs(3600), sg.public_key());
        t.store("big", &doc(&sg, &[0u8; 10]));
        assert_eq!(t.entries(), 0);
        assert!(!entry_path(&root, "big").exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn open_scan_drops_unparseable_files() {
        let sg = signer();
        let root = temp_root("scan");
        {
            let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
            t.store("good", &doc(&sg, b"valid entry"));
        }
        // A torn write that died inside the header.
        fs::write(root.join("deadbeef.doc"), b"BAPSDK01 trunc").unwrap();
        // A stray non-entry file is left alone.
        fs::write(root.join("counters.baseline"), b"requests=0\n").unwrap();
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        assert_eq!(t.entries(), 1);
        assert_eq!(t.stats().heals, 1);
        assert!(!root.join("deadbeef.doc").exists());
        assert!(root.join("counters.baseline").exists());
        assert!(t.load("good").is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn byte_accounting_matches_file_bodies() {
        let sg = signer();
        let root = temp_root("bytes");
        let t = tier(&root, 1 << 20, Duration::from_secs(3600), sg.public_key());
        let docs = [("a", 100usize), ("b", 333), ("c", 7)];
        for (url, n) in docs {
            t.store(url, &doc(&sg, &vec![0xabu8; n]));
        }
        let expect: u64 = docs.iter().map(|&(_, n)| n as u64).sum();
        assert_eq!(t.bytes(), expect);
        // The gauge equals the sum of byte_size over loaded entries.
        let loaded: u64 = docs
            .iter()
            .map(|&(url, _)| t.load(url).unwrap().doc.byte_size())
            .sum();
        assert_eq!(t.bytes(), loaded);
        let _ = fs::remove_dir_all(&root);
    }
}
