//! Document bodies: the origin's corpus and the byte-budgeted body caches
//! used by the live proxy and client agents.

use crate::protocol::Body;
use baps_cache::{ByteLru, CacheStats, Tier};
use baps_crypto::Watermark;
use baps_trace::Interner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The origin server's document corpus. Bodies are shared [`Body`] values
/// so serving a document is a refcount bump, not a copy.
#[derive(Debug, Clone, Default)]
pub struct DocumentStore {
    docs: HashMap<String, Body>,
}

impl DocumentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a document.
    pub fn insert(&mut self, url: impl Into<String>, body: impl Into<Body>) {
        self.docs.insert(url.into(), body.into());
    }

    /// Fetches a document body.
    pub fn get(&self, url: &str) -> Option<&[u8]> {
        self.docs.get(url).map(|b| &b[..])
    }

    /// Fetches a document body as a shared handle (no copy).
    pub fn get_shared(&self, url: &str) -> Option<Body> {
        self.docs.get(url).cloned()
    }

    /// Mutates a document in place (tests document-change behaviour).
    pub fn mutate(&mut self, url: &str, body: impl Into<Body>) -> bool {
        match self.docs.get_mut(url) {
            Some(slot) => {
                *slot = body.into();
                true
            }
            None => false,
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// All URLs in unspecified order.
    pub fn urls(&self) -> impl Iterator<Item = &str> {
        self.docs.keys().map(String::as_str)
    }

    /// Generates `n` synthetic documents named `http://origin/doc/<i>` with
    /// deterministic pseudo-random bodies between `min_size` and `max_size`
    /// bytes.
    pub fn synthetic(n: usize, min_size: usize, max_size: usize, seed: u64) -> DocumentStore {
        assert!(min_size <= max_size && max_size > 0);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = DocumentStore::new();
        for i in 0..n {
            let size = rng.gen_range(min_size..=max_size);
            let mut body = vec![0u8; size];
            rng.fill(body.as_mut_slice());
            store.insert(format!("http://origin/doc/{i}"), body);
        }
        store
    }
}

/// A cached document: its body plus the proxy-issued integrity watermark.
/// Cloning shares the body (refcount bump).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedDoc {
    /// Document body (shared, immutable).
    pub body: Body,
    /// §6.1 digital watermark.
    pub watermark: Watermark,
}

impl CachedDoc {
    /// The bytes this document charges against a cache budget. Every
    /// occupancy gauge — memory-tier LRU accounting, disk-tier accounting,
    /// `Cache-Bytes`/`Disk-Bytes` STATS headers, Prometheus byte gauges —
    /// funnels through this one definition so the gauges can never drift
    /// from each other or from the actual body bytes.
    pub fn byte_size(&self) -> u64 {
        self.body.len() as u64
    }
}

/// Byte-budgeted LRU cache of document bodies, keyed by URL.
#[derive(Debug)]
pub struct BodyCache {
    urls: Interner,
    lru: ByteLru<u32>,
    bodies: HashMap<u32, CachedDoc>,
    stats: CacheStats,
}

impl BodyCache {
    /// Creates a cache holding at most `capacity` body bytes.
    pub fn new(capacity: u64) -> Self {
        BodyCache {
            urls: Interner::new(),
            lru: ByteLru::new(capacity),
            bodies: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `url`, promoting it on a hit. Hits and misses are tallied
    /// in the embedded [`CacheStats`] block (see [`BodyCache::stats`]).
    pub fn get(&mut self, url: &str) -> Option<&CachedDoc> {
        let id = match self.urls.get(url) {
            Some(id) if self.lru.touch(&id).is_some() => id,
            _ => {
                self.stats.record_miss(0);
                return None;
            }
        };
        let doc = self.bodies.get(&id)?;
        self.stats.record_hit(doc.byte_size(), Tier::Memory);
        Some(doc)
    }

    /// Whether `url` is cached (no promotion).
    pub fn contains(&self, url: &str) -> bool {
        self.urls.get(url).is_some_and(|id| self.lru.contains(&id))
    }

    /// Inserts a document; returns the URLs evicted to make room
    /// (callers turn these into `INVALIDATE` messages). If the document is
    /// too large to admit and a stale copy was purged, the URL itself is
    /// included in the evicted list.
    pub fn insert(&mut self, url: &str, doc: CachedDoc) -> Vec<String> {
        let id = self.urls.intern(url);
        let had_prior = self.lru.contains(&id);
        let out = self.lru.insert(id, doc.byte_size());
        self.stats.record_insert(&out.evicted);
        let mut evicted: Vec<String> = out
            .evicted
            .into_iter()
            .map(|(victim, _)| {
                self.bodies.remove(&victim);
                self.urls
                    .name(victim)
                    .expect("interned id has a name")
                    .to_owned()
            })
            .collect();
        if out.admitted {
            self.bodies.insert(id, doc);
        } else {
            self.bodies.remove(&id);
            if had_prior {
                self.stats.evictions += 1;
                evicted.push(url.to_owned());
            }
        }
        evicted
    }

    /// Access/eviction counters accumulated since construction.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Removes `url`; returns whether it was cached.
    pub fn remove(&mut self, url: &str) -> bool {
        match self.urls.get(url) {
            Some(id) => {
                let present = self.lru.remove(&id).is_some();
                self.bodies.remove(&id);
                present
            }
            None => false,
        }
    }

    /// Bytes stored.
    pub fn used(&self) -> u64 {
        self.lru.used()
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baps_crypto::ProxySigner;

    fn doc(signer: &ProxySigner, body: &[u8]) -> CachedDoc {
        CachedDoc {
            body: body.into(),
            watermark: signer.watermark(body),
        }
    }

    fn signer() -> ProxySigner {
        ProxySigner::generate(&mut StdRng::seed_from_u64(1))
    }

    #[test]
    fn synthetic_store_deterministic() {
        let a = DocumentStore::synthetic(10, 100, 1000, 7);
        let b = DocumentStore::synthetic(10, 100, 1000, 7);
        assert_eq!(a.len(), 10);
        for url in a.urls() {
            assert_eq!(a.get(url), b.get(url));
            let len = a.get(url).unwrap().len();
            assert!((100..=1000).contains(&len));
        }
    }

    #[test]
    fn store_mutate() {
        let mut s = DocumentStore::synthetic(2, 10, 20, 1);
        assert!(s.mutate("http://origin/doc/0", vec![1, 2, 3]));
        assert_eq!(s.get("http://origin/doc/0"), Some(&[1u8, 2, 3][..]));
        assert!(!s.mutate("http://origin/doc/99", vec![]));
    }

    #[test]
    fn body_cache_roundtrip() {
        let sg = signer();
        let mut c = BodyCache::new(1000);
        let d = doc(&sg, b"hello world");
        assert!(c.insert("http://a", d.clone()).is_empty());
        assert_eq!(c.get("http://a"), Some(&d));
        assert!(c.contains("http://a"));
        assert_eq!(c.used(), 11);
        assert!(c.remove("http://a"));
        assert!(!c.remove("http://a"));
        assert!(c.get("http://a").is_none());
    }

    /// A cache hit hands back the same allocation that was inserted —
    /// cloning the `CachedDoc` bumps a refcount instead of copying bytes.
    #[test]
    fn cache_hit_shares_body_no_copy() {
        use std::sync::Arc;
        let sg = signer();
        let mut c = BodyCache::new(1000);
        let body: Body = Arc::from(&b"zero copy body"[..]);
        let d = CachedDoc {
            body: Arc::clone(&body),
            watermark: sg.watermark(&body),
        };
        c.insert("u", d);
        let hit = c.get("u").unwrap().clone();
        assert!(Arc::ptr_eq(&hit.body, &body));
        let again = c.get("u").unwrap().clone();
        assert!(Arc::ptr_eq(&again.body, &hit.body));
    }

    #[test]
    fn body_cache_evicts_lru_and_reports_urls() {
        let sg = signer();
        let mut c = BodyCache::new(25);
        c.insert("u1", doc(&sg, &[0u8; 10]));
        c.insert("u2", doc(&sg, &[0u8; 10]));
        c.get("u1"); // promote
        let evicted = c.insert("u3", doc(&sg, &[0u8; 10]));
        assert_eq!(evicted, vec!["u2".to_owned()]);
        assert!(c.contains("u1"));
        assert!(!c.contains("u2"));
    }

    #[test]
    fn body_cache_stats_track_hits_misses_evictions() {
        let sg = signer();
        let mut c = BodyCache::new(25);
        assert!(c.get("u1").is_none()); // miss
        c.insert("u1", doc(&sg, &[0u8; 10]));
        c.insert("u2", doc(&sg, &[0u8; 10]));
        assert!(c.get("u1").is_some()); // hit
        c.insert("u3", doc(&sg, &[0u8; 10])); // evicts u2
        let s = c.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.hit_bytes, 10);
        assert_eq!(s.inserts, 3);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.evicted_bytes, 10);
        assert_eq!(s.requests(), 2);
    }

    #[test]
    fn oversize_body_rejected() {
        let sg = signer();
        let mut c = BodyCache::new(5);
        let evicted = c.insert("big", doc(&sg, &[0u8; 10]));
        assert!(evicted.is_empty());
        assert!(!c.contains("big"));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_body() {
        let sg = signer();
        let mut c = BodyCache::new(100);
        c.insert("u", doc(&sg, b"old"));
        c.insert("u", doc(&sg, b"newer body"));
        assert_eq!(&c.get("u").unwrap().body[..], b"newer body");
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
