//! Deterministic, seedable fault injection for the live runtime.
//!
//! The paper's reliability claim (§6) is that a browsers-aware proxy keeps
//! serving *correct* bytes while browser peers churn, stall, lie, and the
//! origin misbehaves. This module makes those failure modes reproducible: a
//! [`FaultPlan`] is seeded once and then consulted at each injection point
//! — the client's peer-serving loop, the origin's request loop, and the
//! proxy's client-serving loop — where it deterministically decides whether
//! the next reply is served honestly or sabotaged.
//!
//! # Determinism contract
//!
//! Each injection *site* (peer, origin, proxy, schedule) owns its own
//! seeded [`StdRng`] stream and draws **exactly one** sample per decision.
//! As long as the workload drives requests sequentially (the `chaos_soak`
//! harness does), the sequence of arrivals at every site — and therefore
//! the exact faults injected — is a pure function of the seed. Two runs
//! with the same seed and schedule inject identical per-kind fault counts,
//! which `chaos_soak` asserts. Stall durations are chosen to *decisively*
//! exceed the victim's read deadline so that timing jitter cannot flip an
//! outcome.
//!
//! # Adding a new fault kind
//!
//! 1. Add a variant to [`FaultKind`], extend [`FaultKind::ALL`] /
//!    [`FaultKind::name`], and give it a probability knob in
//!    [`FaultConfig`] (plus a line in [`FaultConfig::chaos`]).
//! 2. Add it to the relevant site's cumulative table in
//!    [`FaultPlan::peer_fault`] / [`FaultPlan::origin_fault`] /
//!    [`FaultPlan::proxy_fault`] so it is drawn (and counted) there.
//! 3. Implement its effect: either a wire-level effect in [`WireFault`] +
//!    [`write_reply_with_fault`] (corruption, truncation, stalls), or a
//!    control-flow effect handled by the site itself (refusals, drops,
//!    restarts) before the reply is written.
//! 4. Extend the `chaos_soak` invariants if the new fault changes what
//!    "correct degradation" means.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::protocol::{encode_message, write_message, Message};

/// One kind of injected misbehaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A peer claims it no longer caches the document (`410 Gone`) even
    /// though it does — exercises the stale-index fallback path.
    PeerRefuse,
    /// A peer closes the connection without replying.
    PeerDrop,
    /// A peer stalls mid-frame (slow-loris) past the prober's deadline.
    PeerStall,
    /// A peer sends a truncated frame, then closes.
    PeerTruncate,
    /// A peer serves a corrupted body — the §6.1 watermark must catch it.
    PeerCorrupt,
    /// The origin replies `500 Internal Server Error`.
    OriginError,
    /// The origin stalls mid-reply past the proxy's deadline.
    OriginStall,
    /// The origin closes the connection without replying.
    OriginDrop,
    /// The proxy stalls mid-reply to a client past the client's deadline.
    ProxyStall,
    /// The proxy severs the client connection before replying.
    ProxyDrop,
    /// Every open connection is severed at once (a proxy restart), via
    /// [`crate::proxy::ProxyServer::drop_connections`].
    ProxyRestart,
}

impl FaultKind {
    /// Every kind, in reporting order.
    pub const ALL: [FaultKind; 11] = [
        FaultKind::PeerRefuse,
        FaultKind::PeerDrop,
        FaultKind::PeerStall,
        FaultKind::PeerTruncate,
        FaultKind::PeerCorrupt,
        FaultKind::OriginError,
        FaultKind::OriginStall,
        FaultKind::OriginDrop,
        FaultKind::ProxyStall,
        FaultKind::ProxyDrop,
        FaultKind::ProxyRestart,
    ];

    /// Stable kebab-case name (report lines, reproduction commands).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::PeerRefuse => "peer-refuse",
            FaultKind::PeerDrop => "peer-drop",
            FaultKind::PeerStall => "peer-stall",
            FaultKind::PeerTruncate => "peer-truncate",
            FaultKind::PeerCorrupt => "peer-corrupt",
            FaultKind::OriginError => "origin-error",
            FaultKind::OriginStall => "origin-stall",
            FaultKind::OriginDrop => "origin-drop",
            FaultKind::ProxyStall => "proxy-stall",
            FaultKind::ProxyDrop => "proxy-drop",
            FaultKind::ProxyRestart => "proxy-restart",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL
            .iter()
            .position(|&k| k == self)
            .expect("kind listed in ALL")
    }

    /// The wire-level effect of this kind, if it has one. Kinds without a
    /// wire effect (refusals, drops, restarts) are handled by the site's
    /// control flow instead.
    pub fn wire(self) -> Option<WireFault> {
        match self {
            FaultKind::PeerCorrupt => Some(WireFault::Corrupt),
            FaultKind::PeerTruncate => Some(WireFault::Truncate),
            FaultKind::PeerStall | FaultKind::OriginStall | FaultKind::ProxyStall => {
                Some(WireFault::Stall)
            }
            _ => None,
        }
    }
}

/// How a reply frame is sabotaged on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Flip a body byte; the frame stays well-formed but the bytes are
    /// wrong (watermark verification must reject them).
    Corrupt,
    /// Send only the first half of the frame, then close the connection.
    Truncate,
    /// Send half the frame, sleep past the reader's deadline, then finish.
    Stall,
}

/// Per-kind injection probabilities plus the stall duration.
///
/// Probabilities are evaluated independently per *site* arrival: each
/// arrival draws one uniform sample and walks that site's kinds in
/// [`FaultKind::ALL`] order, so the per-site sum must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// P(peer replies Gone despite caching the document).
    pub p_peer_refuse: f64,
    /// P(peer closes without replying).
    pub p_peer_drop: f64,
    /// P(peer stalls mid-frame).
    pub p_peer_stall: f64,
    /// P(peer truncates the reply frame).
    pub p_peer_truncate: f64,
    /// P(peer corrupts the body).
    pub p_peer_corrupt: f64,
    /// P(origin replies 500).
    pub p_origin_error: f64,
    /// P(origin stalls mid-reply).
    pub p_origin_stall: f64,
    /// P(origin closes without replying).
    pub p_origin_drop: f64,
    /// P(proxy stalls a client reply).
    pub p_proxy_stall: f64,
    /// P(proxy severs the client connection before replying).
    pub p_proxy_drop: f64,
    /// P(schedule tick triggers a proxy restart).
    pub p_restart: f64,
    /// How long a stall lasts. Must decisively exceed every read deadline
    /// in the deployment or outcomes become timing-dependent.
    pub stall: Duration,
}

impl Default for FaultConfig {
    /// All probabilities zero: a plan that never injects anything.
    fn default() -> Self {
        FaultConfig {
            p_peer_refuse: 0.0,
            p_peer_drop: 0.0,
            p_peer_stall: 0.0,
            p_peer_truncate: 0.0,
            p_peer_corrupt: 0.0,
            p_origin_error: 0.0,
            p_origin_stall: 0.0,
            p_origin_drop: 0.0,
            p_proxy_stall: 0.0,
            p_proxy_drop: 0.0,
            p_restart: 0.0,
            stall: Duration::from_millis(500),
        }
    }
}

impl FaultConfig {
    /// A balanced chaos mix, scaled by `intensity` (1.0 ≈ a few percent of
    /// arrivals faulted per site). The stall duration here assumes read
    /// deadlines of at most ~900 ms; deployments with longer deadlines
    /// should raise it.
    pub fn chaos(intensity: f64) -> FaultConfig {
        let s = intensity;
        FaultConfig {
            p_peer_refuse: 0.012 * s,
            p_peer_drop: 0.010 * s,
            p_peer_stall: 0.006 * s,
            p_peer_truncate: 0.010 * s,
            p_peer_corrupt: 0.012 * s,
            p_origin_error: 0.012 * s,
            p_origin_stall: 0.005 * s,
            p_origin_drop: 0.010 * s,
            p_proxy_stall: 0.004 * s,
            p_proxy_drop: 0.008 * s,
            p_restart: 0.002 * s,
            stall: Duration::from_millis(1_300),
        }
    }
}

/// Per-kind counts of faults actually injected by a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    counts: [u64; FaultKind::ALL.len()],
}

impl FaultCounts {
    /// Injected count for one kind.
    pub fn get(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total faults injected across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for kind in FaultKind::ALL {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}={}", kind.name(), self.get(kind))?;
        }
        Ok(())
    }
}

/// A seeded fault schedule shared by every component of a deployment.
///
/// Each injection site (peer serving, origin serving, proxy serving, and
/// the harness's restart schedule) draws from its own RNG stream derived
/// from the plan seed, so sites do not perturb each other's sequences.
pub struct FaultPlan {
    seed: u64,
    config: FaultConfig,
    peer_rng: Mutex<StdRng>,
    origin_rng: Mutex<StdRng>,
    proxy_rng: Mutex<StdRng>,
    schedule_rng: Mutex<StdRng>,
    counts: [AtomicU64; FaultKind::ALL.len()],
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("config", &self.config)
            .field("counts", &self.counts())
            .finish()
    }
}

impl FaultPlan {
    /// Creates a plan for `seed` with the given fault mix.
    pub fn new(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            seed,
            config,
            peer_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x7065_6572)),
            origin_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x6f72_6967_696e)),
            proxy_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x0070_726f_7879)),
            schedule_rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0x0073_6368_6564)),
            counts: Default::default(),
        }
    }

    /// The seed this plan was built from (for reproduction lines).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured fault mix.
    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// How long injected stalls last.
    pub fn stall(&self) -> Duration {
        self.config.stall
    }

    /// Faults injected so far, by kind.
    pub fn counts(&self) -> FaultCounts {
        let mut out = FaultCounts::default();
        for (slot, count) in out.counts.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        out
    }

    /// Draws the fault decision for one `PEERGET`/`PUSH` served by a peer.
    pub fn peer_fault(&self) -> Option<FaultKind> {
        let c = &self.config;
        self.draw(
            &self.peer_rng,
            &[
                (FaultKind::PeerRefuse, c.p_peer_refuse),
                (FaultKind::PeerDrop, c.p_peer_drop),
                (FaultKind::PeerStall, c.p_peer_stall),
                (FaultKind::PeerTruncate, c.p_peer_truncate),
                (FaultKind::PeerCorrupt, c.p_peer_corrupt),
            ],
        )
    }

    /// Draws the fault decision for one `GET` served by the origin.
    pub fn origin_fault(&self) -> Option<FaultKind> {
        let c = &self.config;
        self.draw(
            &self.origin_rng,
            &[
                (FaultKind::OriginError, c.p_origin_error),
                (FaultKind::OriginStall, c.p_origin_stall),
                (FaultKind::OriginDrop, c.p_origin_drop),
            ],
        )
    }

    /// Draws the fault decision for one `GET` served by the proxy.
    pub fn proxy_fault(&self) -> Option<FaultKind> {
        let c = &self.config;
        self.draw(
            &self.proxy_rng,
            &[
                (FaultKind::ProxyStall, c.p_proxy_stall),
                (FaultKind::ProxyDrop, c.p_proxy_drop),
            ],
        )
    }

    /// Draws the restart decision for one schedule tick (the harness calls
    /// this once per request and, on `true`, severs every open connection).
    pub fn restart_due(&self) -> bool {
        self.draw(
            &self.schedule_rng,
            &[(FaultKind::ProxyRestart, self.config.p_restart)],
        )
        .is_some()
    }

    /// One uniform sample walked through a cumulative table. Exactly one
    /// RNG draw per call, so the site's stream advances identically whether
    /// or not a fault fires — the heart of the determinism contract.
    fn draw(&self, rng: &Mutex<StdRng>, table: &[(FaultKind, f64)]) -> Option<FaultKind> {
        let x: f64 = rng.lock().gen();
        let mut acc = 0.0;
        for &(kind, p) in table {
            acc += p;
            if x < acc {
                self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
                return Some(kind);
            }
        }
        None
    }
}

/// Writes `reply`, applying the wire-level effect of `fault` (if any).
/// Returns `Ok(false)` when the connection must be closed afterwards
/// (truncation leaves the stream desynchronised on purpose).
///
/// Control-flow kinds (refusals, drops, restarts) must be handled by the
/// caller *before* building a reply; passing them here writes honestly.
pub fn write_reply_with_fault<W: Write>(
    w: &mut W,
    reply: &Message,
    fault: Option<FaultKind>,
    stall: Duration,
) -> io::Result<bool> {
    match fault.and_then(FaultKind::wire) {
        None => {
            write_message(w, reply)?;
            Ok(true)
        }
        Some(WireFault::Corrupt) => {
            // Bodies are shared `Arc<[u8]>`; corrupting must not touch the
            // cached original, so this fault path pays for a private copy.
            let mut bytes = reply.body.to_vec();
            if let Some(byte) = bytes.first_mut() {
                *byte ^= 0xff;
            }
            let bad = reply.clone().with_body(bytes);
            write_message(w, &bad)?;
            Ok(true)
        }
        Some(WireFault::Truncate) => {
            let frame = encode_message(reply)?;
            w.write_all(&frame[..frame.len() / 2])?;
            w.flush()?;
            Ok(false)
        }
        Some(WireFault::Stall) => {
            let frame = encode_message(reply)?;
            let half = frame.len() / 2;
            w.write_all(&frame[..half])?;
            w.flush()?;
            std::thread::sleep(stall);
            w.write_all(&frame[half..])?;
            w.flush()?;
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, response, status};
    use std::io::BufReader;

    fn saturated() -> FaultConfig {
        FaultConfig {
            p_peer_refuse: 0.2,
            p_peer_drop: 0.2,
            p_peer_stall: 0.2,
            p_peer_truncate: 0.2,
            p_peer_corrupt: 0.2,
            p_origin_error: 0.5,
            p_origin_stall: 0.25,
            p_origin_drop: 0.25,
            p_proxy_stall: 0.5,
            p_proxy_drop: 0.5,
            p_restart: 1.0,
            stall: Duration::from_millis(1),
        }
    }

    #[test]
    fn draws_are_deterministic_per_seed() {
        let a = FaultPlan::new(7, FaultConfig::chaos(10.0));
        let b = FaultPlan::new(7, FaultConfig::chaos(10.0));
        for _ in 0..500 {
            assert_eq!(a.peer_fault(), b.peer_fault());
            assert_eq!(a.origin_fault(), b.origin_fault());
            assert_eq!(a.proxy_fault(), b.proxy_fault());
            assert_eq!(a.restart_due(), b.restart_due());
        }
        assert_eq!(a.counts(), b.counts());
        assert!(a.counts().total() > 0, "chaos(10.0) must inject something");
    }

    #[test]
    fn sites_have_independent_streams() {
        // Draining one site must not change another site's sequence.
        let a = FaultPlan::new(9, saturated());
        let b = FaultPlan::new(9, saturated());
        for _ in 0..100 {
            let _ = a.peer_fault();
        }
        for _ in 0..20 {
            assert_eq!(a.origin_fault(), b.origin_fault());
        }
    }

    #[test]
    fn zero_config_injects_nothing() {
        let plan = FaultPlan::new(1, FaultConfig::default());
        for _ in 0..200 {
            assert_eq!(plan.peer_fault(), None);
            assert_eq!(plan.origin_fault(), None);
            assert_eq!(plan.proxy_fault(), None);
            assert!(!plan.restart_due());
        }
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn counts_track_draws() {
        let plan = FaultPlan::new(3, saturated());
        for _ in 0..100 {
            let _ = plan.origin_fault();
        }
        let counts = plan.counts();
        // Saturated origin table: every draw lands on some origin kind.
        let origin_total = counts.get(FaultKind::OriginError)
            + counts.get(FaultKind::OriginStall)
            + counts.get(FaultKind::OriginDrop);
        assert_eq!(origin_total, 100);
        assert!(counts.to_string().contains("origin-error="));
    }

    #[test]
    fn corrupt_keeps_frame_well_formed_but_flips_bytes() {
        let reply = response(status::OK, "OK").with_body(b"payload".to_vec());
        let mut buf = Vec::new();
        let keep = write_reply_with_fault(
            &mut buf,
            &reply,
            Some(FaultKind::PeerCorrupt),
            Duration::ZERO,
        )
        .unwrap();
        assert!(keep);
        let back = read_message(&mut BufReader::new(buf.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(back.body.len(), reply.body.len());
        assert_ne!(back.body, reply.body);
        assert_eq!(back.body[0], b'p' ^ 0xff);
    }

    #[test]
    fn truncate_yields_unreadable_frame_and_closes() {
        let reply = response(status::OK, "OK").with_body(b"0123456789abcdef".to_vec());
        let mut buf = Vec::new();
        let keep = write_reply_with_fault(
            &mut buf,
            &reply,
            Some(FaultKind::PeerTruncate),
            Duration::ZERO,
        )
        .unwrap();
        assert!(!keep, "truncation must close the connection");
        assert!(read_message(&mut BufReader::new(buf.as_slice())).is_err());
    }

    #[test]
    fn stall_eventually_writes_the_whole_frame() {
        let reply = response(status::OK, "OK").with_body(b"slow but complete".to_vec());
        let mut buf = Vec::new();
        let keep = write_reply_with_fault(
            &mut buf,
            &reply,
            Some(FaultKind::PeerStall),
            Duration::from_millis(1),
        )
        .unwrap();
        assert!(keep);
        let back = read_message(&mut BufReader::new(buf.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(back.body, reply.body);
    }
}
