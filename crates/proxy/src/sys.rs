//! Thin raw-syscall shim over Linux `epoll(7)` and `eventfd(2)`.
//!
//! The workspace takes no external crates and `std` exposes no readiness
//! API, so the reactor (DESIGN.md §13) declares the handful of libc
//! symbols it needs directly — `std` already links libc on every supported
//! target, so the symbols are present without adding a dependency. Only
//! the two kernel objects the reactor needs are wrapped: an epoll instance
//! and an eventfd used as a cross-thread wakeup. Everything else
//! (nonblocking sockets, vectored writes) goes through `std::net`.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_uint, c_void};
use std::time::Duration;

// Constants from the Linux UAPI headers (a stable kernel ABI).
const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// Readable readiness (`EPOLLIN`).
pub(crate) const EV_READ: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub(crate) const EV_WRITE: u32 = 0x004;
/// Error condition (`EPOLLERR`) — always reported, never requested.
pub(crate) const EV_ERROR: u32 = 0x008;
/// Peer hung up (`EPOLLHUP`) — always reported, never requested.
pub(crate) const EV_HUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub(crate) const EV_RDHUP: u32 = 0x2000;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
}

/// Mirror of the kernel's `struct epoll_event`. The x86-64 kernel ABI
/// declares it `__attribute__((packed))`; other architectures use natural
/// alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub(crate) struct EpollEvent {
    /// Ready-event bitmask (`EV_*`).
    pub(crate) events: u32,
    /// Caller-chosen token, passed back verbatim with each ready event.
    pub(crate) data: u64,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An epoll instance: a kernel-side interest list plus a ready queue.
pub(crate) struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Creates a new close-on-exec epoll instance.
    pub(crate) fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall; the returned fd is owned exclusively here.
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: `fd` is a freshly created, valid descriptor we own.
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        cvt(unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given interest mask; ready events carry
    /// `token` back.
    pub(crate) fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest mask of an already-registered `fd`.
    pub(crate) fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the interest list. (Closing the fd removes it
    /// implicitly; an explicit delete keeps the bookkeeping obvious.)
    pub(crate) fn delete(&self, fd: RawFd) -> io::Result<()> {
        // Pre-2.6.9 kernels demanded a non-null event even for DEL; passing
        // one keeps the shim trivially portable.
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// elapses (`None` waits forever). Fills `events` and returns how many
    /// entries are valid. A zero-fd wait with a timeout still sleeps.
    pub(crate) fn wait(
        &self,
        events: &mut [EpollEvent],
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(d) => {
                // Round up so a sub-millisecond timer sleeps ~1ms instead
                // of spinning on a 0ms timeout.
                let ms = d.as_millis();
                let ms = if Duration::from_millis(ms as u64) < d {
                    ms + 1
                } else {
                    ms
                };
                ms.min(c_int::MAX as u128) as c_int
            }
        };
        let max = events.len().min(c_int::MAX as usize) as c_int;
        // SAFETY: `events` is a valid, writable buffer of `max` entries.
        let n =
            cvt(unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), max, timeout_ms) })?;
        Ok(n as usize)
    }
}

/// A nonblocking eventfd used to wake an event loop from another thread
/// (the accept loop handing over a connection, a miss worker delivering a
/// completion).
pub(crate) struct WakeFd {
    fd: OwnedFd,
}

impl WakeFd {
    /// Creates a nonblocking, close-on-exec eventfd with counter zero.
    pub(crate) fn new() -> io::Result<WakeFd> {
        // SAFETY: plain syscall; the returned fd is owned exclusively here.
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: `fd` is a freshly created, valid descriptor we own.
        Ok(WakeFd {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The raw fd, for registering with an [`Epoll`].
    pub(crate) fn raw(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Makes the eventfd readable, waking any loop blocked in
    /// [`Epoll::wait`] on it. Best-effort: a saturated counter (`EAGAIN`)
    /// already guarantees the loop will wake.
    pub(crate) fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writing 8 bytes from a live stack value to an fd we own.
        unsafe {
            let _ = write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }

    /// Resets the counter so the next [`Self::wake`] is observable again.
    pub(crate) fn drain(&self) {
        let mut buf: u64 = 0;
        // SAFETY: reading 8 bytes into a live stack value from an fd we own.
        unsafe {
            let _ = read(
                self.fd.as_raw_fd(),
                (&mut buf as *mut u64).cast::<c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn epoll_reports_readable_socket_with_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), 42, EV_READ).unwrap();

        let mut events = [EpollEvent::default(); 8];
        // Nothing to read yet: a short wait times out empty.
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);

        client.write_all(b"ping").unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let (bits, token) = (events[0].events, events[0].data);
        assert_eq!(token, 42);
        assert_ne!(bits & EV_READ, 0);

        ep.delete(server.as_raw_fd()).unwrap();
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deleted fd no longer reports");
    }

    #[test]
    fn wakefd_wakes_and_drains() {
        let wake = WakeFd::new().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(wake.raw(), 7, EV_READ).unwrap();

        let mut events = [EpollEvent::default(); 4];
        wake.wake();
        wake.wake(); // coalesces into one readable counter
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let token = events[0].data;
        assert_eq!(token, 7);

        wake.drain();
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "drained eventfd is quiet again");
    }

    #[test]
    fn epoll_modify_switches_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let ep = Epoll::new().unwrap();
        // Idle socket registered for write: reports writable immediately.
        ep.add(server.as_raw_fd(), 1, EV_WRITE).unwrap();
        let mut events = [EpollEvent::default(); 4];
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let bits = events[0].events;
        assert_ne!(bits & EV_WRITE, 0);

        // Switch to read interest: quiet until the peer sends.
        ep.modify(server.as_raw_fd(), 1, EV_READ).unwrap();
        let n = ep
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        client.write_all(b"x").unwrap();
        let n = ep.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        let bits = events[0].events;
        assert_ne!(bits & EV_READ, 0);
    }
}
