//! Bounded connection-serving infrastructure shared by the proxy, origin,
//! and client peer servers.
//!
//! The seed runtime spawned one detached `std::thread` per accepted TCP
//! connection: under a connection flood that exhausts OS threads, and the
//! detached handlers made clean shutdown impossible once connections became
//! persistent. This module replaces that with:
//!
//! * [`WorkerPool`] — a fixed set of named worker threads pulling accepted
//!   connections from a **bounded** queue. When the queue is full the new
//!   connection is dropped (its peer sees EOF and may retry), so a flood
//!   degrades gracefully instead of taking the process down.
//! * [`ConnRegistry`] — the set of currently open connections. Keep-alive
//!   handlers block in `read_message` between requests, so the connect-once
//!   "wake the acceptor" trick can no longer terminate them; shutdown now
//!   calls [`TcpStream::shutdown`] on every registered socket, which makes
//!   each handler's blocking read return and its loop exit.

use baps_obs::{AtomicHistogram, LatencyHistogram};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default worker threads per server.
pub const DEFAULT_WORKERS: usize = 8;
/// Default bounded backlog of accepted-but-unclaimed connections.
pub const DEFAULT_BACKLOG: usize = 64;

/// Dials `addr` with `deadline` as the connect timeout and installs it as
/// the read/write timeout on the resulting stream, so no later blocking
/// operation on this socket can outlive it. `Duration::ZERO` disables the
/// deadline entirely (plain blocking connect, no socket timeouts).
pub fn dial_with_deadline(addr: SocketAddr, deadline: Duration) -> io::Result<TcpStream> {
    let stream = if deadline.is_zero() {
        TcpStream::connect(addr)?
    } else {
        TcpStream::connect_timeout(&addr, deadline)?
    };
    stream.set_nodelay(true)?;
    if !deadline.is_zero() {
        stream.set_read_timeout(Some(deadline))?;
        stream.set_write_timeout(Some(deadline))?;
    }
    Ok(stream)
}

/// Tracks open connections so shutdown can unblock their handlers.
#[derive(Default)]
pub struct ConnRegistry {
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_id: AtomicU64,
    closing: AtomicBool,
}

impl ConnRegistry {
    /// Creates an empty registry.
    pub fn new() -> ConnRegistry {
        ConnRegistry::default()
    }

    /// Registers a connection; returns a token for [`Self::deregister`],
    /// or `None` when the registry is already shutting down (the caller
    /// should drop the connection instead of serving it).
    pub fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        {
            let mut conns = self.conns.lock();
            if self.closing.load(Ordering::Acquire) {
                return None;
            }
            conns.insert(id, clone);
        }
        Some(id)
    }

    /// Removes a finished connection.
    pub fn deregister(&self, id: u64) {
        self.conns.lock().remove(&id);
    }

    /// Number of currently open connections.
    pub fn open_connections(&self) -> usize {
        self.conns.lock().len()
    }

    /// Severs every currently open connection but keeps the registry
    /// accepting new ones. Ops/test hook: peers with keep-alive
    /// connections observe an abrupt EOF mid-session and must reconnect.
    pub fn drop_all(&self) {
        let conns = std::mem::take(&mut *self.conns.lock());
        for stream in conns.into_values() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Shuts down both directions of every registered socket, forcing any
    /// handler blocked in a read to observe EOF and exit its serve loop.
    /// Further registrations are refused.
    pub fn close_all(&self) {
        self.closing.store(true, Ordering::Release);
        self.drop_all();
    }
}

/// Runtime-saturation telemetry for one [`WorkerPool`]: how deep the
/// accept backlog runs, how long connections sit in it before a worker
/// picks them up, and how many workers are busy — the measured evidence
/// for (or against) the thread-per-connection architecture (ROADMAP
/// item 1: queue delay vs service time decides the event-driven reactor).
///
/// All fields are plain atomics recorded unconditionally: saturation data
/// must exist even when the overhead benchmark turns event recording off,
/// and a handful of relaxed atomic ops per *connection* (not per request)
/// is far below the always-on budget.
#[derive(Debug, Default)]
pub struct PoolTelemetry {
    workers: AtomicU64,
    queued: AtomicU64,
    queued_peak: AtomicU64,
    busy: AtomicU64,
    busy_peak: AtomicU64,
    rejected: AtomicU64,
    queue_wait: AtomicHistogram,
}

/// A point-in-time copy of a pool's [`PoolTelemetry`].
#[derive(Debug, Clone)]
pub struct SaturationSnapshot {
    /// Configured worker threads.
    pub workers: u64,
    /// Connections currently parked in the accept backlog.
    pub queue_depth: u64,
    /// Deepest the backlog has been since start.
    pub queue_depth_peak: u64,
    /// Workers currently serving a connection.
    pub busy_workers: u64,
    /// Most workers simultaneously busy since start.
    pub busy_workers_peak: u64,
    /// Connections dropped because the backlog was full.
    pub rejected: u64,
    /// Time connections spent in the backlog before a worker claimed them.
    pub queue_wait: LatencyHistogram,
}

impl PoolTelemetry {
    /// Creates zeroed telemetry; hand it to [`WorkerPool::start_with`].
    pub fn new() -> PoolTelemetry {
        PoolTelemetry::default()
    }

    fn raise_peak(peak: &AtomicU64, value: u64) {
        // Same cheap discipline as `AtomicHistogram::record_ms`: skip the
        // CAS loop unless this is actually a new peak.
        if value > peak.load(Ordering::Relaxed) {
            peak.fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records the configured worker count. `WorkerPool::start_with` calls
    /// this itself; the reactor's miss executor (which reuses this
    /// telemetry for its own queue/busy gauges, see DESIGN.md §13) calls
    /// it directly.
    pub(crate) fn set_workers(&self, n: u64) {
        self.workers.store(n, Ordering::Relaxed);
    }

    pub(crate) fn enqueued(&self) {
        let depth = self.queued.fetch_add(1, Ordering::Relaxed).wrapping_add(1);
        Self::raise_peak(&self.queued_peak, depth);
    }

    pub(crate) fn enqueue_failed(&self) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn dequeued(&self, wait: Duration) {
        self.queued.fetch_sub(1, Ordering::Relaxed);
        self.queue_wait.record(wait);
    }

    pub(crate) fn task_started(&self) {
        let busy = self.busy.fetch_add(1, Ordering::Relaxed) + 1;
        Self::raise_peak(&self.busy_peak, busy);
    }

    pub(crate) fn task_finished(&self) {
        self.busy.fetch_sub(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every gauge, peak, and the wait histogram.
    pub fn snapshot(&self) -> SaturationSnapshot {
        SaturationSnapshot {
            workers: self.workers.load(Ordering::Relaxed),
            queue_depth: self.queued.load(Ordering::Relaxed),
            queue_depth_peak: self.queued_peak.load(Ordering::Relaxed),
            busy_workers: self.busy.load(Ordering::Relaxed),
            busy_workers_peak: self.busy_peak.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.snapshot(),
        }
    }
}

/// A fixed-size pool of worker threads serving accepted connections from a
/// bounded queue.
pub struct WorkerPool {
    tx: SyncSender<(TcpStream, Instant)>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<ConnRegistry>,
    telemetry: Arc<PoolTelemetry>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `{name}-N`. Each accepted connection
    /// handed to [`Self::dispatch`] is registered, served by `handler`
    /// (which typically loops over `read_message`), then deregistered.
    pub fn start<F>(
        name: &str,
        workers: usize,
        backlog: usize,
        handler: F,
    ) -> io::Result<WorkerPool>
    where
        F: Fn(TcpStream) + Send + Sync + 'static,
    {
        Self::start_with(
            name,
            workers,
            backlog,
            Arc::new(PoolTelemetry::new()),
            move |stream, _queue_wait| handler(stream),
        )
    }

    /// [`start`](Self::start) with caller-owned [`PoolTelemetry`] (so the
    /// handler's captured state can hold the same `Arc`) and a handler
    /// that also receives the time this connection spent parked in the
    /// accept backlog — the proxy attributes it to the connection's first
    /// request as a `queue-wait` span.
    pub fn start_with<F>(
        name: &str,
        workers: usize,
        backlog: usize,
        telemetry: Arc<PoolTelemetry>,
        handler: F,
    ) -> io::Result<WorkerPool>
    where
        F: Fn(TcpStream, Duration) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        telemetry.workers.store(workers as u64, Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::sync_channel::<(TcpStream, Instant)>(backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let registry = Arc::new(ConnRegistry::new());
        let handler = Arc::new(handler);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&registry);
            let handler = Arc::clone(&handler);
            let telemetry = Arc::clone(&telemetry);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || worker_loop(&rx, &registry, &telemetry, &*handler))?,
            );
        }
        Ok(WorkerPool {
            tx,
            workers: handles,
            registry,
            telemetry,
        })
    }

    /// Queues an accepted connection for a worker. Returns `false` (and
    /// drops the connection) when the backlog is full or the pool stopped.
    pub fn dispatch(&self, stream: TcpStream) -> bool {
        // Count the connection *before* handing it over: a worker may
        // claim it (and decrement the gauge) the instant `try_send`
        // lands, so incrementing afterwards would race the gauge below
        // zero. A failed send undoes the increment.
        self.telemetry.enqueued();
        match self.tx.try_send((stream, Instant::now())) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.telemetry.enqueue_failed();
                false
            }
        }
    }

    /// Connections dropped because the backlog was full.
    pub fn rejected(&self) -> u64 {
        self.telemetry.rejected.load(Ordering::Relaxed)
    }

    /// The pool's connection registry (for shutdown and diagnostics).
    pub fn registry(&self) -> &Arc<ConnRegistry> {
        &self.registry
    }

    /// The pool's saturation telemetry.
    pub fn telemetry(&self) -> &Arc<PoolTelemetry> {
        &self.telemetry
    }

    /// Stops accepting new work, unblocks in-flight handlers by closing
    /// their sockets, and joins every worker thread.
    pub fn shutdown(mut self) {
        // Workers exit when the channel disconnects *and* their current
        // connection's serve loop ends; closing the sockets guarantees the
        // latter.
        drop(self.tx);
        self.registry.close_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<F: Fn(TcpStream, Duration) + ?Sized>(
    rx: &Mutex<Receiver<(TcpStream, Instant)>>,
    registry: &ConnRegistry,
    telemetry: &PoolTelemetry,
    handler: &F,
) {
    loop {
        // Hold the lock only while waiting for the next connection, so
        // idle workers queue up on the receiver fairly.
        let received = {
            let rx = rx.lock();
            rx.recv()
        };
        let Ok((stream, enqueued_at)) = received else {
            break;
        };
        let queue_wait = enqueued_at.elapsed();
        telemetry.dequeued(queue_wait);
        // Request/response protocol: never trade latency for batching.
        let _ = stream.set_nodelay(true);
        let Some(token) = registry.register(&stream) else {
            continue; // shutting down: drop the connection
        };
        telemetry.task_started();
        handler(stream, queue_wait);
        telemetry.task_finished();
        registry.deregister(token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;
    use std::time::Duration;

    #[test]
    fn pool_serves_connections() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let pool = WorkerPool::start("test-pool", 2, 4, |mut s: TcpStream| {
            let mut buf = [0u8; 4];
            if s.read_exact(&mut buf).is_ok() {
                let _ = s.write_all(&buf);
            }
        })
        .unwrap();
        let acceptor = std::thread::spawn({
            move || {
                for _ in 0..4 {
                    let (conn, _) = listener.accept().unwrap();
                    assert!(pool.dispatch(conn));
                }
                pool
            }
        });
        for _ in 0..4 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).unwrap();
            assert_eq!(&buf, b"ping");
        }
        let pool = acceptor.join().unwrap();
        pool.shutdown();
    }

    #[test]
    fn shutdown_unblocks_stuck_handler() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Handler blocks reading until the socket dies.
        let pool = WorkerPool::start("stuck-pool", 1, 1, |mut s: TcpStream| {
            let mut buf = [0u8; 1];
            while let Ok(n) = s.read(&mut buf) {
                if n == 0 {
                    break;
                }
            }
        })
        .unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (conn, _) = listener.accept().unwrap();
        assert!(pool.dispatch(conn));
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(pool.registry().open_connections(), 1);
        // Without close_all this would hang forever on join.
        pool.shutdown();
        drop(client);
    }

    #[test]
    fn telemetry_tracks_queue_busy_and_waits() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let telemetry = Arc::new(PoolTelemetry::new());
        let pool = WorkerPool::start_with(
            "telemetry-pool",
            2,
            4,
            Arc::clone(&telemetry),
            |mut s: TcpStream, queue_wait: Duration| {
                // The measured wait is handed to the handler so servers can
                // attribute it to the connection's first request.
                assert!(queue_wait < Duration::from_secs(5));
                let mut buf = [0u8; 4];
                if s.read_exact(&mut buf).is_ok() {
                    let _ = s.write_all(&buf);
                }
            },
        )
        .unwrap();
        let acceptor = std::thread::spawn(move || {
            for _ in 0..4 {
                let (conn, _) = listener.accept().unwrap();
                assert!(pool.dispatch(conn));
            }
            pool
        });
        for _ in 0..4 {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"ping").unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).unwrap();
        }
        let pool = acceptor.join().unwrap();
        let snap = pool.telemetry().snapshot();
        assert_eq!(snap.workers, 2);
        assert_eq!(snap.rejected, 0);
        assert_eq!(snap.queue_wait.count(), 4, "every dispatch waits once");
        assert!(snap.busy_workers_peak >= 1);
        assert!(snap.queue_depth_peak >= 1);
        pool.shutdown();
        // After shutdown nothing is queued or busy.
        assert_eq!(telemetry.snapshot().queue_depth, 0);
        assert_eq!(telemetry.snapshot().busy_workers, 0);
    }

    #[test]
    fn full_backlog_rejects() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // One worker that blocks forever on its first connection, backlog 1.
        let pool = WorkerPool::start("flood-pool", 1, 1, |mut s: TcpStream| {
            let mut buf = [0u8; 1];
            while matches!(s.read(&mut buf), Ok(n) if n > 0) {}
        })
        .unwrap();
        let mut clients = Vec::new();
        let mut rejected = 0;
        for _ in 0..8 {
            clients.push(TcpStream::connect(addr).unwrap());
            let (conn, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(10));
            if !pool.dispatch(conn) {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "flood should overflow a backlog of 1");
        assert_eq!(pool.rejected(), rejected);
        pool.shutdown();
    }
}
