//! Wire protocol of the live browsers-aware proxy.
//!
//! A minimal HTTP/1.0-flavoured text protocol: a start line, colon-separated
//! headers, a blank line, then an optional body of `Content-Length` bytes.
//! Methods:
//!
//! * `GET <url> BAPS/1.0` — client → proxy document fetch
//!   (header `Client: <id>`; optional `Bypass-Peers: 1` after a failed
//!   integrity check; optional `Evicted: <url> <url> …` carrying
//!   piggybacked eviction notices, processed before the GET — evictions
//!   don't spend a round trip each, see `INVALIDATE`);
//! * `PEERGET <url> BAPS/1.0` — proxy → peer browser-cache fetch
//!   (header `Txn: <id>`; deliberately **no requester identity**, §6.2);
//! * `PUSH <url> BAPS/1.0` — proxy → peer, *direct-forward mode* (paper
//!   §2's first implementation alternative): instructs the peer to push
//!   the document straight to the requester's delivery address
//!   (headers `Txn: <id>`, `Target: <host:port>`);
//! * `DELIVER <url> BAPS/1.0` — peer → requester direct delivery
//!   (headers `Txn: <id>`, `X-Watermark`; body = document);
//! * `INVALIDATE <url> BAPS/1.0` — client → proxy eviction notice
//!   (header `Client: <id>`);
//! * `REGISTER <peer-port> BAPS/1.0` — client → proxy enrolment
//!   (header `Client: <id>`);
//! * `STATS BAPS/1.0` — operator → proxy live-counter probe; the reply
//!   carries every [`ProxyCounters`] field as a header (`Requests`,
//!   `Proxy-Hits`, `Peer-Hits`, `Origin-Fetches`, `Invalidations`,
//!   `Peer-Failures`, `Direct-Pushes`);
//! * `METRICS BAPS/1.0` — operator → proxy metrics scrape; the reply body
//!   is a Prometheus text exposition (counters, per-shard gauges,
//!   per-tier/per-verb latency histograms — see DESIGN.md §9), with
//!   `Content-Type: text/plain; version=0.0.4`. Supersedes the ad-hoc
//!   `STATS` headers for monitoring; `STATS` remains for compatibility;
//! * `TRACE BAPS/1.0` — operator → proxy trace export; the reply body is
//!   JSONL, one span per line, drained from the proxy's flight recorder
//!   (`Content-Type: application/jsonl`, plus `Sample-One-In` naming the
//!   head-sampling rate). `trace_report` assembles the lines into causal
//!   span trees — see DESIGN.md §12;
//! * `GET <url> ORIGIN/1.0` — proxy → origin server fetch.
//!
//! Requests initiated on behalf of a client fetch additionally carry a
//! `Trace-Id: <16 hex digits>` header (minted by the requesting client,
//! forwarded by the proxy on `PEERGET`/`PUSH` and on the origin `GET`), so
//! one request can be followed through every component's flight-recorder
//! events.
//!
//! Head-sampled traces (a deterministic 1-in-N of trace ids, see
//! `baps_obs::span::sampled`) additionally carry a `Span-Id: <16 hex
//! digits>` header naming the **sender's hop span**: the client's root
//! span on `GET`, the proxy's probe/push/fetch hop spans on
//! `PEERGET`/`PUSH`/origin `GET`, and the pushing peer's serve span on
//! `DELIVER`. The receiver records its own spans with that id as the
//! parent, so span trees stitch across processes without any coordination
//! beyond the header.
//!
//! Responses: `BAPS/1.0 <code> <reason>` with `Content-Length`, `X-Source`
//! (`proxy` | `peer` | `origin`) and `X-Watermark` (hex, §6.1) headers.
//!
//! # Connection lifecycle (keep-alive)
//!
//! Every connection is **persistent**: both sides loop
//! `read_message` → handle → `write_message` until the peer closes, so one
//! TCP connection carries any number of request/response rounds. Framing
//! relies entirely on `Content-Length`, which is why [`write_message`]
//! refuses mismatched or duplicated lengths — one bad frame would
//! desynchronise every later message on the connection. [`read_message`]
//! returns `Ok(None)` on a clean close between messages, which handlers
//! treat as the end of the session. Clients hold one lazily-dialed
//! connection to the proxy and transparently redial (replaying the
//! in-flight request once) when the proxy drops it; the proxy keeps a pool
//! of kept-alive origin connections the same way. Servers run a fixed
//! worker pool, so each open connection occupies one worker until it
//! closes (see [`crate::pool`]).
//!
//! [`ProxyCounters`]: crate::proxy::ProxyCounters

use std::io::{self, BufRead, IoSlice, Write};
use std::sync::Arc;

/// Maximum accepted header count (straightforward DoS hygiene).
pub(crate) const MAX_HEADERS: usize = 64;
/// Maximum accepted body size.
pub const MAX_BODY: usize = 64 << 20;

/// A document body as shared immutable bytes. Cloning a `Body` is a
/// refcount bump, so a cached document travels cache → response frame →
/// peer → browser cache without ever being copied (the only copy is the
/// one `read_message` makes off the socket).
pub type Body = Arc<[u8]>;

/// An empty [`Body`].
pub fn empty_body() -> Body {
    Arc::from(&[][..])
}

/// A parsed protocol message (request or response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The start line, e.g. `GET /doc BAPS/1.0` or `BAPS/1.0 200 OK`.
    pub start: String,
    /// Header name/value pairs in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was present).
    pub body: Body,
}

impl Message {
    /// Creates a message with no headers and no body.
    pub fn new(start: impl Into<String>) -> Message {
        Message {
            start: start.into(),
            headers: Vec::new(),
            body: empty_body(),
        }
    }

    /// Appends a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Message {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Attaches a body (the `Content-Length` header is added on write).
    /// Accepts a `Vec<u8>` (converted once) or an existing [`Body`]
    /// (shared, no copy).
    pub fn with_body(mut self, body: impl Into<Body>) -> Message {
        self.body = body.into();
        self
    }

    /// First value of a header (case-insensitive name match).
    pub fn get(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Splits the start line into whitespace-separated tokens.
    pub fn tokens(&self) -> Vec<&str> {
        self.start.split_ascii_whitespace().collect()
    }
}

/// Writes a message, framing the body with exactly one `Content-Length`.
///
/// If the caller already set a `Content-Length` header it is kept (never
/// duplicated) and must match the actual body length — a mismatch returns
/// `InvalidInput` instead of emitting a frame the receiver would misread.
/// Duplicated or wrong lengths are fatal under keep-alive: the reader
/// honours the first header it sees, desynchronising every later message
/// on the connection.
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<()> {
    // One write per frame. Writing head and body separately triggers the
    // Nagle/delayed-ACK interaction on keep-alive connections: the kernel
    // holds the second small write until the peer ACKs the first, and the
    // peer delays that ACK up to ~40 ms waiting to piggyback it. A
    // vectored write keeps that single-syscall framing without copying the
    // body into a contiguous frame first (bodies are shared `Arc<[u8]>`).
    let head = encode_head(msg)?;
    let body = &msg.body[..];
    let total = head.len() + body.len();
    let mut written = 0;
    while written < total {
        let n = if written < head.len() {
            let bufs = [
                IoSlice::new(&head.as_bytes()[written..]),
                IoSlice::new(body),
            ];
            w.write_vectored(&bufs)?
        } else {
            w.write(&body[written - head.len()..])?
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "failed to write whole frame",
            ));
        }
        written += n;
    }
    w.flush()
}

/// Serialises a message into one contiguous frame (what [`write_message`]
/// puts on the wire), applying the same `Content-Length` validation. The
/// fault injector uses this to truncate or stall frames mid-byte-stream;
/// the hot path uses [`write_message`], which never builds this copy.
pub fn encode_message(msg: &Message) -> io::Result<Vec<u8>> {
    let head = encode_head(msg)?;
    let mut frame = Vec::with_capacity(head.len() + msg.body.len());
    frame.extend_from_slice(head.as_bytes());
    frame.extend_from_slice(&msg.body);
    Ok(frame)
}

/// Serialises the start line and headers (through the terminating blank
/// line), validating any caller-supplied `Content-Length`.
pub(crate) fn encode_head(msg: &Message) -> io::Result<String> {
    if let Some(declared) = msg.get("Content-Length") {
        let declared: usize = declared.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("unparsable Content-Length {declared:?}: {e}"),
            )
        })?;
        if declared != msg.body.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "Content-Length {} does not match body length {}",
                    declared,
                    msg.body.len()
                ),
            ));
        }
    }
    let mut head = String::with_capacity(64 + msg.headers.len() * 32);
    head.push_str(&msg.start);
    head.push_str("\r\n");
    for (name, value) in &msg.headers {
        debug_assert!(!name.contains(':') || name.eq_ignore_ascii_case("host"));
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if msg.get("Content-Length").is_none() {
        use std::fmt::Write as _;
        let _ = write!(head, "Content-Length: {}\r\n", msg.body.len());
    }
    head.push_str("\r\n");
    Ok(head)
}

/// Reads one message; returns `None` on a cleanly closed connection.
pub fn read_message<R: BufRead>(r: &mut R) -> io::Result<Option<Message>> {
    let mut start = String::new();
    if r.read_line(&mut start)? == 0 {
        return Ok(None);
    }
    let start = start.trim_end().to_owned();
    if start.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "empty start line",
        ));
    }
    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {line}"))
        })?;
        headers.push((name.trim().to_owned(), value.trim().to_owned()));
    }
    let mut msg = Message {
        start,
        headers,
        body: empty_body(),
    };
    if let Some(len) = msg.get("Content-Length") {
        let len: usize = len
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad length: {e}")))?;
        if len > MAX_BODY {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        // The one unavoidable copy: socket bytes into a fresh allocation,
        // immediately frozen into a shared `Body`.
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        msg.body = body.into();
    }
    Ok(Some(msg))
}

/// Response codes used by the protocol.
pub mod status {
    /// Success.
    pub const OK: u16 = 200;
    /// Conditional GET: the requester's copy (named by `If-Digest`) still
    /// matches the origin's, so no body is sent.
    pub const NOT_MODIFIED: u16 = 304;
    /// Document not found anywhere.
    pub const NOT_FOUND: u16 = 404;
    /// Peer no longer holds the document.
    pub const GONE: u16 = 410;
    /// Malformed request.
    pub const BAD_REQUEST: u16 = 400;
    /// The server failed internally (fault-injected origin errors).
    pub const SERVER_ERROR: u16 = 500;
    /// The document exists but no backend could serve it right now
    /// (origin unreachable after retries); clients may retry.
    pub const UNAVAILABLE: u16 = 503;
}

/// Builds a response message with the given status code.
pub fn response(code: u16, reason: &str) -> Message {
    Message::new(format!("BAPS/1.0 {code} {reason}"))
}

/// Parses the status code out of a response start line.
pub fn response_code(msg: &Message) -> Option<u16> {
    let tokens = msg.tokens();
    if tokens.len() < 2 || !tokens[0].starts_with("BAPS/") {
        return None;
    }
    tokens[1].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    fn roundtrip(msg: &Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, msg).unwrap();
        read_message(&mut BufReader::new(Cursor::new(buf)))
            .unwrap()
            .unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let msg = Message::new("GET http://x/doc BAPS/1.0")
            .header("Client", "3")
            .header("Bypass-Peers", "1");
        let back = roundtrip(&msg);
        assert_eq!(back.start, msg.start);
        assert_eq!(back.get("Client"), Some("3"));
        assert_eq!(back.get("bypass-peers"), Some("1"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn response_with_body_roundtrip() {
        let body = b"<html>doc body</html>".to_vec();
        let msg = response(status::OK, "OK")
            .header("X-Source", "peer")
            .with_body(body.clone());
        let back = roundtrip(&msg);
        assert_eq!(response_code(&back), Some(200));
        assert_eq!(back.get("X-Source"), Some("peer"));
        assert_eq!(&back.body[..], &body[..]);
        assert_eq!(back.get("Content-Length"), Some("21"));
    }

    #[test]
    fn empty_body_has_zero_length_header() {
        let back = roundtrip(&response(status::GONE, "Gone"));
        assert_eq!(back.get("Content-Length"), Some("0"));
        assert!(back.body.is_empty());
    }

    #[test]
    fn closed_stream_yields_none() {
        let mut r = BufReader::new(Cursor::new(Vec::<u8>::new()));
        assert!(read_message(&mut r).unwrap().is_none());
    }

    #[test]
    fn bad_header_rejected() {
        let raw = b"GET x BAPS/1.0\r\nnocolonhere\r\n\r\n".to_vec();
        let err = read_message(&mut BufReader::new(Cursor::new(raw))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_body_rejected() {
        let raw = b"BAPS/1.0 200 OK\r\nContent-Length: 10\r\n\r\nabc".to_vec();
        let err = read_message(&mut BufReader::new(Cursor::new(raw))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_inside_headers_rejected() {
        let raw = b"GET x BAPS/1.0\r\nClient: 1\r\n".to_vec();
        let err = read_message(&mut BufReader::new(Cursor::new(raw))).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn response_code_parsing() {
        assert_eq!(response_code(&response(410, "Gone")), Some(410));
        assert_eq!(response_code(&Message::new("GET x BAPS/1.0")), None);
        assert_eq!(response_code(&Message::new("BAPS/1.0")), None);
    }

    #[test]
    fn tokens_split() {
        let m = Message::new("PEERGET http://a/b BAPS/1.0");
        assert_eq!(m.tokens(), vec!["PEERGET", "http://a/b", "BAPS/1.0"]);
    }

    /// Regression: a caller-supplied `Content-Length` must not be emitted
    /// twice. The duplicate used to desynchronise keep-alive connections
    /// (the reader honours the first header, here the caller's copy, while
    /// the writer appended a second computed one).
    #[test]
    fn caller_content_length_not_duplicated() {
        let body = b"payload".to_vec();
        let msg = Message::new("BAPS/1.0 200 OK")
            .header("Content-Length", body.len().to_string())
            .with_body(body.clone());
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(
            text.matches("Content-Length").count(),
            1,
            "exactly one Content-Length header:\n{text}"
        );
        let back = read_message(&mut BufReader::new(Cursor::new(buf)))
            .unwrap()
            .unwrap();
        assert_eq!(&back.body[..], &body[..]);
    }

    /// Regression: a mismatched caller-supplied `Content-Length` is an
    /// error, not a silently corrupt frame.
    #[test]
    fn mismatched_content_length_rejected() {
        let msg = Message::new("BAPS/1.0 200 OK")
            .header("Content-Length", "3")
            .with_body(b"longer than three".to_vec());
        let err = write_message(&mut Vec::new(), &msg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);

        let msg = Message::new("BAPS/1.0 200 OK").header("Content-Length", "not-a-number");
        let err = write_message(&mut Vec::new(), &msg).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    /// Pipelining with caller-set lengths: back-to-back frames stay in sync
    /// (the keep-alive invariant).
    #[test]
    fn pipelined_with_explicit_lengths() {
        let mut buf = Vec::new();
        let a = Message::new("BAPS/1.0 200 OK")
            .header("Content-Length", "2")
            .with_body(b"ab".to_vec());
        let b = Message::new("BAPS/1.0 200 OK").with_body(b"xyz".to_vec());
        write_message(&mut buf, &a).unwrap();
        write_message(&mut buf, &b).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        assert_eq!(&read_message(&mut r).unwrap().unwrap().body[..], b"ab");
        assert_eq!(&read_message(&mut r).unwrap().unwrap().body[..], b"xyz");
        assert!(read_message(&mut r).unwrap().is_none());
    }

    /// Attaching an existing `Body` shares it — no copy on the response
    /// build path.
    #[test]
    fn with_body_shares_allocation() {
        let body: Body = Arc::from(&b"shared bytes"[..]);
        let msg = response(status::OK, "OK").with_body(Arc::clone(&body));
        assert!(Arc::ptr_eq(&msg.body, &body));
        let clone = msg.clone();
        assert!(Arc::ptr_eq(&clone.body, &body), "clone is a refcount bump");
    }

    #[test]
    fn pipelined_messages() {
        let mut buf = Vec::new();
        write_message(&mut buf, &Message::new("GET a BAPS/1.0")).unwrap();
        write_message(&mut buf, &Message::new("GET b BAPS/1.0")).unwrap();
        let mut r = BufReader::new(Cursor::new(buf));
        assert_eq!(read_message(&mut r).unwrap().unwrap().tokens()[1], "a");
        assert_eq!(read_message(&mut r).unwrap().unwrap().tokens()[1], "b");
        assert!(read_message(&mut r).unwrap().is_none());
    }
}
