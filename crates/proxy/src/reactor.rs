//! Event-driven connection serving for the proxy (`io_mode = Reactor`).
//!
//! The thread-per-connection pool (`pool.rs`) parks one OS thread per open
//! keep-alive connection, which caps the proxy at a few dozen sockets —
//! nowhere near the many-mostly-idle-browsers deployment the paper
//! describes. This module multiplexes every client connection onto a small
//! set of event loops instead (DESIGN.md §13):
//!
//! - an **accept loop** (unchanged, still blocking) hands accepted sockets
//!   round-robin to per-core event loops through a mutex-protected inbox,
//!   waking the loop via an eventfd;
//! - each **event loop** owns an epoll instance and a set of per-connection
//!   state machines that carry partial reads and partial writes of BAPS
//!   frames across readiness events — an idle connection costs one
//!   registered fd and a parser buffer, not a parked thread;
//! - a complete frame is dispatched through the *unchanged* request logic
//!   (`proxy::dispatch`): inline on the loop when the answer cannot block
//!   (memory-cache hits, admin verbs), or on a small blocking **miss
//!   executor** when it can (disk, peer probes, origin fetches, coalesced
//!   followers parking on a condvar);
//! - replies are queued as `[owned head, shared body]` segments and pushed
//!   with nonblocking vectored writes, continuing from the exact byte where
//!   the kernel said `EAGAIN`.
//!
//! Fault injection keeps its thread-mode semantics: drops sever before
//! handling, stalls write half the frame and arm a loop timer (the loop
//! never sleeps), truncation closes after the half frame flushes.

use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::fault::{FaultKind, FaultPlan, WireFault};
use crate::pool::PoolTelemetry;
use crate::protocol::{encode_head, encode_message, Body, Message, MAX_BODY, MAX_HEADERS};
use crate::proxy::{dispatch, needs_miss_executor, verb_index, ProxyState};
use crate::sys::{Epoll, EpollEvent, WakeFd, EV_ERROR, EV_HUP, EV_RDHUP, EV_READ, EV_WRITE};

/// Token reserved for each loop's wake eventfd.
const WAKE_TOKEN: u64 = u64::MAX;
/// Ready events fetched per `epoll_wait` call.
const EVENT_BATCH: usize = 256;
/// Bytes read per `read` call on a ready socket.
const READ_CHUNK: usize = 16 << 10;
/// Cap on buffered-but-unparsed *head* bytes (start line + headers) per
/// connection. `read_message` never needed one because a dribbling sender
/// only tied up its own thread's line buffer; under the reactor the buffer
/// lives in the shared loop, so a slow-loris peer gets a bounded allowance
/// (far above any legitimate head) instead of unbounded memory.
const MAX_HEAD_BYTES: usize = 1 << 20;
/// Most write-queue segments offered to one vectored write.
const MAX_IOVEC: usize = 16;

// ---------------------------------------------------------------------------
// Incremental frame parsing
// ---------------------------------------------------------------------------

enum ParseState {
    Start,
    Headers,
    /// Headers done; waiting for this many body bytes.
    Body(usize),
}

/// Incremental, resumable equivalent of [`crate::protocol::read_message`]:
/// feed it raw socket bytes with [`push`](Self::push), pull complete frames
/// with [`next`](Self::next). Error cases (empty start line, bad header,
/// header-count and body-size limits, non-UTF-8 head) match `read_message`
/// byte for byte so both I/O modes reject exactly the same inputs.
pub(crate) struct FrameParser {
    buf: Vec<u8>,
    /// Parse cursor into `buf`; everything before it has been consumed.
    pos: usize,
    state: ParseState,
    start: String,
    headers: Vec<(String, String)>,
}

impl FrameParser {
    pub(crate) fn new() -> FrameParser {
        FrameParser {
            buf: Vec::new(),
            pos: 0,
            state: ParseState::Start,
            start: String::new(),
            headers: Vec::new(),
        }
    }

    /// Appends freshly read socket bytes.
    pub(crate) fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Whether the parser sits at a clean frame boundary with nothing
    /// buffered — i.e. EOF here is a graceful close, exactly the case where
    /// `read_message` returns `Ok(None)`. (The loop closes on EOF either
    /// way, so this is a test-only distinction.)
    #[cfg(test)]
    pub(crate) fn is_idle(&self) -> bool {
        matches!(self.state, ParseState::Start) && self.pos == self.buf.len()
    }

    /// Takes the next `\n`-terminated line (without the terminator) from
    /// the buffer, or `None` if no full line is buffered yet.
    fn take_line(&mut self) -> io::Result<Option<String>> {
        match self.buf[self.pos..].iter().position(|&b| b == b'\n') {
            Some(i) => {
                let line = std::str::from_utf8(&self.buf[self.pos..self.pos + i])
                    .map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            "stream did not contain valid UTF-8",
                        )
                    })?
                    .to_owned();
                self.pos += i + 1;
                Ok(Some(line))
            }
            None => {
                if self.buf.len() - self.pos > MAX_HEAD_BYTES {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame head too large",
                    ));
                }
                Ok(None)
            }
        }
    }

    /// Returns the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the same `InvalidData` errors `read_message` raises.
    pub(crate) fn next(&mut self) -> io::Result<Option<Message>> {
        loop {
            match self.state {
                ParseState::Start => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    let start = line.trim_end().to_owned();
                    if start.is_empty() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "empty start line",
                        ));
                    }
                    self.start = start;
                    self.state = ParseState::Headers;
                }
                ParseState::Headers => {
                    let Some(line) = self.take_line()? else {
                        return Ok(None);
                    };
                    let line = line.trim_end();
                    if line.is_empty() {
                        let len = self.content_length()?;
                        self.state = ParseState::Body(len);
                        continue;
                    }
                    if self.headers.len() >= MAX_HEADERS {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            "too many headers",
                        ));
                    }
                    let (name, value) = line.split_once(':').ok_or_else(|| {
                        io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {line}"))
                    })?;
                    self.headers
                        .push((name.trim().to_owned(), value.trim().to_owned()));
                }
                ParseState::Body(len) => {
                    if self.buf.len() - self.pos < len {
                        return Ok(None);
                    }
                    let body: Body = Arc::from(&self.buf[self.pos..self.pos + len]);
                    self.pos += len;
                    // Compact: everything consumed so far is dead weight.
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                    self.state = ParseState::Start;
                    return Ok(Some(Message {
                        start: std::mem::take(&mut self.start),
                        headers: std::mem::take(&mut self.headers),
                        body,
                    }));
                }
            }
        }
    }

    /// `Content-Length` of the frame whose headers were just completed
    /// (first case-insensitive match, like `Message::get`); zero if absent.
    fn content_length(&self) -> io::Result<usize> {
        let Some((_, value)) = self
            .headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("Content-Length"))
        else {
            return Ok(0);
        };
        let len: usize = value
            .parse()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad length: {e}")))?;
        if len > MAX_BODY {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "body too large"));
        }
        Ok(len)
    }
}

// ---------------------------------------------------------------------------
// Partial-write queue
// ---------------------------------------------------------------------------

enum SegBytes {
    /// Encoded head (or a fault-mangled private frame copy).
    Owned(Vec<u8>),
    /// The reply body, shared zero-copy with the cache.
    Shared(Body),
}

struct Segment {
    bytes: SegBytes,
    /// Bytes of this segment already written to the socket.
    pos: usize,
}

impl Segment {
    fn remaining(&self) -> &[u8] {
        let all = match &self.bytes {
            SegBytes::Owned(v) => v.as_slice(),
            SegBytes::Shared(b) => b,
        };
        &all[self.pos..]
    }
}

/// Pending reply bytes for one connection, flushed with vectored writes
/// that resume mid-segment after `EAGAIN`.
pub(crate) struct WriteQueue {
    segs: VecDeque<Segment>,
}

impl WriteQueue {
    pub(crate) fn new() -> WriteQueue {
        WriteQueue {
            segs: VecDeque::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    pub(crate) fn push_owned(&mut self, bytes: Vec<u8>) {
        if !bytes.is_empty() {
            self.segs.push_back(Segment {
                bytes: SegBytes::Owned(bytes),
                pos: 0,
            });
        }
    }

    pub(crate) fn push_shared(&mut self, body: Body) {
        if !body.is_empty() {
            self.segs.push_back(Segment {
                bytes: SegBytes::Shared(body),
                pos: 0,
            });
        }
    }

    /// Advances the queue past `n` freshly written bytes.
    fn advance(&mut self, mut n: usize) {
        while n > 0 {
            let Some(front) = self.segs.front_mut() else {
                return;
            };
            let left = front.remaining().len();
            if n < left {
                front.pos += n;
                return;
            }
            n -= left;
            self.segs.pop_front();
        }
    }

    /// Writes as much as the socket accepts. `Ok(true)` = fully drained,
    /// `Ok(false)` = the kernel pushed back (`EAGAIN`); re-arm `EPOLLOUT`
    /// and continue from the same byte on the next writable event.
    pub(crate) fn flush<W: Write>(&mut self, w: &mut W) -> io::Result<bool> {
        while !self.segs.is_empty() {
            let bufs: Vec<IoSlice<'_>> = self
                .segs
                .iter()
                .take(MAX_IOVEC)
                .map(|s| IoSlice::new(s.remaining()))
                .collect();
            match w.write_vectored(&bufs) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "connection write stalled",
                    ))
                }
                Ok(n) => self.advance(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

/// Always-on gauges for the reactor, the event-driven analogue of
/// [`PoolTelemetry`]: registered connections instead of parked threads,
/// loop busy-fraction instead of busy workers, epoll batch depth instead of
/// backlog depth. (In reactor mode `PoolTelemetry` itself keeps reporting —
/// it describes the blocking miss executor.)
#[derive(Debug)]
pub struct ReactorTelemetry {
    loops: AtomicU64,
    registered: AtomicU64,
    registered_peak: AtomicU64,
    ready_events: AtomicU64,
    ready_batch_peak: AtomicU64,
    wakeups: AtomicU64,
    inline_served: AtomicU64,
    offloaded: AtomicU64,
    busy_micros: AtomicU64,
    started: Instant,
}

impl ReactorTelemetry {
    pub(crate) fn new() -> ReactorTelemetry {
        ReactorTelemetry {
            loops: AtomicU64::new(0),
            registered: AtomicU64::new(0),
            registered_peak: AtomicU64::new(0),
            ready_events: AtomicU64::new(0),
            ready_batch_peak: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            inline_served: AtomicU64::new(0),
            offloaded: AtomicU64::new(0),
            busy_micros: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    fn set_loops(&self, n: u64) {
        self.loops.store(n, Ordering::Relaxed);
    }

    fn conn_registered(&self) {
        let now = self.registered.fetch_add(1, Ordering::Relaxed) + 1;
        if now > self.registered_peak.load(Ordering::Relaxed) {
            self.registered_peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    fn conn_closed(&self) {
        self.registered.fetch_sub(1, Ordering::Relaxed);
    }

    fn on_batch(&self, ready: u64) {
        self.ready_events.fetch_add(ready, Ordering::Relaxed);
        if ready > self.ready_batch_peak.load(Ordering::Relaxed) {
            self.ready_batch_peak.fetch_max(ready, Ordering::Relaxed);
        }
    }

    fn on_wakeup(&self) {
        self.wakeups.fetch_add(1, Ordering::Relaxed);
    }

    fn inline(&self) {
        self.inline_served.fetch_add(1, Ordering::Relaxed);
    }

    fn offload(&self) {
        self.offloaded.fetch_add(1, Ordering::Relaxed);
    }

    fn add_busy(&self, busy: Duration) {
        self.busy_micros
            .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
    }

    /// A point-in-time copy of every reactor gauge.
    pub fn snapshot(&self) -> ReactorSnapshot {
        let loops = self.loops.load(Ordering::Relaxed).max(1);
        let elapsed_us = self.started.elapsed().as_micros().max(1) as u64;
        let busy_us = self.busy_micros.load(Ordering::Relaxed);
        ReactorSnapshot {
            loops,
            registered_fds: self.registered.load(Ordering::Relaxed),
            registered_fds_peak: self.registered_peak.load(Ordering::Relaxed),
            ready_events: self.ready_events.load(Ordering::Relaxed),
            ready_batch_peak: self.ready_batch_peak.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
            inline_served: self.inline_served.load(Ordering::Relaxed),
            offloaded: self.offloaded.load(Ordering::Relaxed),
            busy_fraction: (busy_us as f64 / (elapsed_us as f64 * loops as f64)).min(1.0),
        }
    }
}

/// A point-in-time copy of a reactor's [`ReactorTelemetry`], surfaced via
/// `ProxyServer::reactor_stats`, STATS headers, and `baps_reactor_*`
/// metrics.
#[derive(Debug, Clone)]
pub struct ReactorSnapshot {
    /// Event loops serving connections.
    pub loops: u64,
    /// Connections currently registered with an epoll instance.
    pub registered_fds: u64,
    /// Most connections simultaneously registered since start.
    pub registered_fds_peak: u64,
    /// Total readiness events delivered to the loops.
    pub ready_events: u64,
    /// Most events one `epoll_wait` returned at once (ready-queue depth).
    pub ready_batch_peak: u64,
    /// Times a loop was woken through its eventfd (new connection or
    /// miss-executor completion).
    pub wakeups: u64,
    /// Requests answered inline on a loop (memory hits, admin verbs).
    pub inline_served: u64,
    /// Requests handed to the blocking miss executor.
    pub offloaded: u64,
    /// Fraction of wall time the loops spent processing events rather than
    /// parked in `epoll_wait` (0.0–1.0, averaged across loops).
    pub busy_fraction: f64,
}

// ---------------------------------------------------------------------------
// Cross-thread plumbing
// ---------------------------------------------------------------------------

/// Work delivered *to* an event loop by other threads.
enum Inbound {
    /// A freshly accepted connection (with its accept timestamp, so the
    /// handoff delay becomes the connection's queue-wait attribution).
    Conn(TcpStream, Instant),
    /// A finished miss-executor dispatch, routed back to the owning loop.
    Done {
        token: u64,
        reply: Option<Message>,
        fault: Option<FaultKind>,
        queue_wait: Option<Duration>,
    },
    /// Sever every connection this loop owns, then ack. The ack makes
    /// `drop_connections` synchronous from the caller's side, matching
    /// thread mode (`ConnRegistry::drop_all` returns only after every
    /// socket is shut down) — the sequential chaos driver relies on that.
    DropAll(Sender<()>),
}

struct LoopShared {
    inbox: Mutex<Vec<Inbound>>,
    wake: WakeFd,
}

/// One offloaded request: everything a miss worker needs to run the
/// unchanged `dispatch` and route the reply home.
struct MissJob {
    loop_id: usize,
    token: u64,
    msg: Message,
    peer_ip: std::net::IpAddr,
    fault: Option<FaultKind>,
    queue_wait: Option<Duration>,
    enqueued: Instant,
}

/// A stalled reply's second half, due at `at` (`FaultKind::ProxyStall`:
/// thread mode sleeps the worker mid-frame; the reactor arms a timer and
/// keeps serving everyone else).
struct StallTimer {
    at: Instant,
    token: u64,
    rest: Vec<u8>,
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    /// Epoll/loop-local token.
    token: u64,
    peer_ip: std::net::IpAddr,
    parser: FrameParser,
    wq: WriteQueue,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// A dispatch is in flight (offloaded) or a stall timer is pending:
    /// buffered frames wait, exactly like the thread-mode worker that is
    /// busy inside `dispatch` or asleep mid-stall.
    busy: bool,
    /// Close once the write queue drains (fault truncation).
    close_after_flush: bool,
    /// Accept-backlog wait, attributed to the first sampled request.
    queue_wait: Option<Duration>,
}

// ---------------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------------

struct EventLoop {
    id: usize,
    epoll: Epoll,
    shared: Arc<LoopShared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    timers: Vec<StallTimer>,
    state: Arc<ProxyState>,
    miss_tx: Sender<MissJob>,
    pool_telemetry: Arc<PoolTelemetry>,
    telemetry: Arc<ReactorTelemetry>,
    stop: Arc<AtomicBool>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events = vec![EpollEvent::default(); EVENT_BATCH];
        loop {
            let timeout = self.next_timeout();
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            };
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let t_busy = Instant::now();
            if n > 0 {
                self.telemetry.on_batch(n as u64);
            }
            for ev in events.iter().take(n) {
                // Copy out of the (packed) event before using the fields.
                let token = ev.data;
                let bits = ev.events;
                if token == WAKE_TOKEN {
                    self.telemetry.on_wakeup();
                    self.shared.wake.drain();
                    self.drain_inbox();
                } else {
                    self.on_ready(token, bits);
                }
            }
            self.fire_timers();
            self.telemetry.add_busy(t_busy.elapsed());
        }
    }

    fn next_timeout(&self) -> Option<Duration> {
        let now = Instant::now();
        self.timers
            .iter()
            .map(|t| t.at.saturating_duration_since(now))
            .min()
    }

    fn drain_inbox(&mut self) {
        let inbound = std::mem::take(&mut *self.shared.inbox.lock());
        for item in inbound {
            match item {
                Inbound::Conn(stream, accepted) => self.add_conn(stream, accepted),
                Inbound::Done {
                    token,
                    reply,
                    fault,
                    queue_wait,
                } => self.on_done(token, reply, fault, queue_wait),
                Inbound::DropAll(ack) => {
                    self.drop_all_conns();
                    let _ = ack.send(());
                }
            }
        }
    }

    /// Severs every connection this loop owns (`drop_connections`). Closing
    /// the stream is the severing: the loop is the fd's only owner — no
    /// duplicate handle exists anywhere, which is what keeps 10k idle
    /// connections at 10k proxy-side fds instead of 20k.
    fn drop_all_conns(&mut self) {
        for (_, conn) in std::mem::take(&mut self.conns) {
            self.drop_conn(conn);
        }
    }

    fn add_conn(&mut self, stream: TcpStream, accepted: Instant) {
        if self.stop.load(Ordering::Acquire) {
            return; // shutting down: close instead of registering
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let Ok(peer) = stream.peer_addr() else {
            return;
        };
        let token = self.next_token;
        self.next_token += 1;
        let interest = EV_READ | EV_RDHUP;
        if self.epoll.add(stream.as_raw_fd(), token, interest).is_err() {
            return;
        }
        self.telemetry.conn_registered();
        self.conns.insert(
            token,
            Conn {
                stream,
                token,
                peer_ip: peer.ip(),
                parser: FrameParser::new(),
                wq: WriteQueue::new(),
                interest,
                busy: false,
                close_after_flush: false,
                queue_wait: Some(accepted.elapsed()),
            },
        );
    }

    fn drop_conn(&mut self, conn: Conn) {
        let _ = self.epoll.delete(conn.stream.as_raw_fd());
        self.telemetry.conn_closed();
        self.timers.retain(|t| t.token != conn.token);
    }

    fn on_ready(&mut self, token: u64, bits: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut alive = bits & EV_ERROR == 0;
        if alive && bits & (EV_READ | EV_RDHUP | EV_HUP) != 0 {
            alive = self.drive_readable(&mut conn);
        }
        let alive = alive && self.after_io(&mut conn);
        if alive {
            self.conns.insert(token, conn);
        } else {
            self.drop_conn(conn);
        }
    }

    /// Reads until the socket would block, feeding the frame parser.
    /// `false` = peer gone (EOF) or hard error: close.
    fn drive_readable(&mut self, conn: &mut Conn) -> bool {
        loop {
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.parser.push(&self.scratch[..n]);
                    if n < self.scratch.len() {
                        return true;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parses and dispatches buffered frames (unless the connection is
    /// mid-dispatch), flushes pending writes, and re-arms epoll interest.
    /// `false` = close the connection.
    fn after_io(&mut self, conn: &mut Conn) -> bool {
        while !conn.busy {
            match conn.parser.next() {
                Ok(Some(msg)) => {
                    if !self.handle_frame(conn, msg) {
                        return false;
                    }
                }
                Ok(None) => break,
                // Protocol violation: thread mode propagates the error out
                // of `serve_connection`, closing without a reply. Same here.
                Err(_) => return false,
            }
        }
        match conn.wq.flush(&mut conn.stream) {
            Ok(true) => {
                if conn.close_after_flush && !conn.busy {
                    return false;
                }
            }
            Ok(false) => {}
            Err(_) => return false,
        }
        self.update_interest(conn)
    }

    fn update_interest(&mut self, conn: &mut Conn) -> bool {
        let mut want = EV_READ | EV_RDHUP;
        if !conn.wq.is_empty() {
            want |= EV_WRITE;
        }
        if want == conn.interest {
            return true;
        }
        if self
            .epoll
            .modify(conn.stream.as_raw_fd(), conn.token, want)
            .is_err()
        {
            return false;
        }
        conn.interest = want;
        true
    }

    /// One complete request frame: draw the fault decision (same single
    /// RNG draw per GET as thread mode, in arrival order), then dispatch
    /// inline or offload to the miss executor. `false` = close.
    fn handle_frame(&mut self, conn: &mut Conn, msg: Message) -> bool {
        let fault = match (msg.tokens().first(), self.state.config.faults.as_deref()) {
            (Some(&"GET"), Some(plan)) => plan.proxy_fault(),
            _ => None,
        };
        if fault == Some(FaultKind::ProxyDrop) {
            // Sever before handling: the client sees EOF and replays.
            return false;
        }
        if needs_miss_executor(&msg, &self.state) {
            conn.busy = true;
            self.telemetry.offload();
            self.pool_telemetry.enqueued();
            let job = MissJob {
                loop_id: self.id,
                token: conn.token,
                peer_ip: conn.peer_ip,
                fault,
                queue_wait: conn.queue_wait.take(),
                enqueued: Instant::now(),
                msg,
            };
            if self.miss_tx.send(job).is_err() {
                self.pool_telemetry.enqueue_failed();
                return false; // executor gone: shutting down
            }
            return true;
        }
        self.telemetry.inline();
        let t_verb = Instant::now();
        let verb = verb_index(msg.tokens().first());
        let reply = dispatch(&msg, conn.peer_ip, &mut conn.queue_wait, &self.state);
        self.state.obs.verbs.record(verb, t_verb.elapsed());
        match reply {
            Some(reply) => self.enqueue_reply(conn, &reply, fault),
            None => true,
        }
    }

    /// A miss-executor completion for connection `token` (which may have
    /// died in the meantime — the thread-mode analogue is a reply whose
    /// write fails).
    fn on_done(
        &mut self,
        token: u64,
        reply: Option<Message>,
        fault: Option<FaultKind>,
        queue_wait: Option<Duration>,
    ) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        conn.queue_wait = queue_wait;
        conn.busy = false;
        let mut alive = true;
        if let Some(reply) = reply {
            alive = self.enqueue_reply(&mut conn, &reply, fault);
        }
        let alive = alive && self.after_io(&mut conn);
        if alive {
            self.conns.insert(token, conn);
        } else {
            self.drop_conn(conn);
        }
    }

    /// Queues a reply, applying the wire-level fault exactly as
    /// [`crate::fault::write_reply_with_fault`] would — except a stall
    /// arms a loop timer instead of sleeping the thread. `false` = close.
    fn enqueue_reply(
        &mut self,
        conn: &mut Conn,
        reply: &Message,
        fault: Option<FaultKind>,
    ) -> bool {
        match fault.and_then(FaultKind::wire) {
            None => {
                let Ok(head) = encode_head(reply) else {
                    return false;
                };
                conn.wq.push_owned(head.into_bytes());
                conn.wq.push_shared(Arc::clone(&reply.body));
                true
            }
            Some(WireFault::Corrupt) => {
                // Flip a byte on a private copy; the shared body stays good.
                let mut bad = reply.body.to_vec();
                if let Some(b) = bad.first_mut() {
                    *b ^= 0xff;
                }
                let corrupted = reply.clone().with_body(bad);
                let Ok(frame) = encode_message(&corrupted) else {
                    return false;
                };
                conn.wq.push_owned(frame);
                true
            }
            Some(WireFault::Truncate) => {
                let Ok(frame) = encode_message(reply) else {
                    return false;
                };
                let half = frame.len() / 2;
                conn.wq.push_owned(frame[..half].to_vec());
                conn.close_after_flush = true;
                true
            }
            Some(WireFault::Stall) => {
                let Ok(frame) = encode_message(reply) else {
                    return false;
                };
                let stall = self
                    .state
                    .config
                    .faults
                    .as_deref()
                    .map(FaultPlan::stall)
                    .unwrap_or_default();
                let half = frame.len() / 2;
                conn.wq.push_owned(frame[..half].to_vec());
                // Mirror the sleeping thread-mode worker: no further
                // requests on this connection until the frame completes.
                conn.busy = true;
                self.timers.push(StallTimer {
                    at: Instant::now() + stall,
                    token: conn.token,
                    rest: frame[half..].to_vec(),
                });
                true
            }
        }
    }

    /// Delivers the second half of stalled frames whose deadline passed.
    fn fire_timers(&mut self) {
        let now = Instant::now();
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.timers.len() {
            if self.timers[i].at <= now {
                due.push(self.timers.swap_remove(i));
            } else {
                i += 1;
            }
        }
        for timer in due {
            let Some(mut conn) = self.conns.remove(&timer.token) else {
                continue;
            };
            conn.wq.push_owned(timer.rest);
            conn.busy = false;
            let alive = self.after_io(&mut conn);
            if alive {
                self.conns.insert(timer.token, conn);
            } else {
                self.drop_conn(conn);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor: loops + miss executor + accept-side handle
// ---------------------------------------------------------------------------

/// The event-driven serving backend: per-core event loops plus a small
/// blocking miss executor, behind the same dispatch/shutdown surface as
/// [`crate::pool::WorkerPool`].
pub(crate) struct Reactor {
    shared: Arc<Vec<Arc<LoopShared>>>,
    next: AtomicUsize,
    loops: Vec<JoinHandle<()>>,
    miss_tx: Option<Sender<MissJob>>,
    miss_workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<ReactorTelemetry>,
}

/// Cloneable control surface over a running reactor, detached from the
/// [`Reactor`] itself (which moves into the acceptor thread). Fills the
/// role [`crate::pool::ConnRegistry`] plays in thread mode — but without
/// the `try_clone` duplicate fd per connection the registry keeps: the
/// loops are the sole owners of their sockets, so `open_connections` reads
/// the registered gauge and `drop_all` asks each loop to close its own.
pub(crate) struct ReactorHandle {
    shared: Arc<Vec<Arc<LoopShared>>>,
    telemetry: Arc<ReactorTelemetry>,
}

impl ReactorHandle {
    /// Client connections currently registered across the loops.
    pub(crate) fn open_connections(&self) -> usize {
        self.telemetry.snapshot().registered_fds as usize
    }

    /// Severs every open connection without stopping the loops, returning
    /// once every loop has acked (same synchronous contract as
    /// `ConnRegistry::drop_all` — callers may immediately assert on EOF).
    pub(crate) fn drop_all(&self) {
        let (tx, rx) = std::sync::mpsc::channel();
        for sh in self.shared.iter() {
            sh.inbox.lock().push(Inbound::DropAll(tx.clone()));
            sh.wake.wake();
        }
        drop(tx);
        for _ in 0..self.shared.len() {
            let _ = rx.recv();
        }
    }
}

impl Reactor {
    /// Spawns `loops` event loops (`{name}-loop-N`) and `miss_workers`
    /// blocking executor threads (`{name}-miss-N`). `pool_telemetry`
    /// tracks the miss executor's queue/busy gauges; `telemetry` tracks
    /// the loops themselves.
    pub(crate) fn start(
        name: &str,
        loops: usize,
        miss_workers: usize,
        state: Arc<ProxyState>,
        pool_telemetry: Arc<PoolTelemetry>,
        telemetry: Arc<ReactorTelemetry>,
    ) -> io::Result<Reactor> {
        let loops = loops.max(1);
        let miss_workers = miss_workers.max(1);
        telemetry.set_loops(loops as u64);
        pool_telemetry.set_workers(miss_workers as u64);
        let stop = Arc::new(AtomicBool::new(false));
        let (miss_tx, miss_rx) = std::sync::mpsc::channel::<MissJob>();
        let miss_rx = Arc::new(Mutex::new(miss_rx));

        let mut shared = Vec::with_capacity(loops);
        let mut loop_handles = Vec::with_capacity(loops);
        let mut prepared = Vec::with_capacity(loops);
        for _ in 0..loops {
            let epoll = Epoll::new()?;
            let sh = Arc::new(LoopShared {
                inbox: Mutex::new(Vec::new()),
                wake: WakeFd::new()?,
            });
            epoll.add(sh.wake.raw(), WAKE_TOKEN, EV_READ)?;
            shared.push(Arc::clone(&sh));
            prepared.push((epoll, sh));
        }
        let shared = Arc::new(shared);

        for (id, (epoll, sh)) in prepared.into_iter().enumerate() {
            let ev_loop = EventLoop {
                id,
                epoll,
                shared: sh,
                conns: HashMap::new(),
                next_token: 0,
                timers: Vec::new(),
                state: Arc::clone(&state),
                miss_tx: miss_tx.clone(),
                pool_telemetry: Arc::clone(&pool_telemetry),
                telemetry: Arc::clone(&telemetry),
                stop: Arc::clone(&stop),
                scratch: vec![0u8; READ_CHUNK],
            };
            loop_handles.push(
                std::thread::Builder::new()
                    .name(format!("{name}-loop-{id}"))
                    .spawn(move || ev_loop.run())?,
            );
        }

        let mut miss_handles = Vec::with_capacity(miss_workers);
        for i in 0..miss_workers {
            let rx = Arc::clone(&miss_rx);
            let state = Arc::clone(&state);
            let shared = Arc::clone(&shared);
            let pool_telemetry = Arc::clone(&pool_telemetry);
            miss_handles.push(
                std::thread::Builder::new()
                    .name(format!("{name}-miss-{i}"))
                    .spawn(move || miss_worker_loop(&rx, &state, &shared, &pool_telemetry))?,
            );
        }

        Ok(Reactor {
            shared,
            next: AtomicUsize::new(0),
            loops: loop_handles,
            miss_tx: Some(miss_tx),
            miss_workers: miss_handles,
            stop,
            telemetry,
        })
    }

    /// Hands an accepted connection to the next loop, round-robin.
    /// (Never rejects: an idle connection costs a registered fd, not a
    /// bounded-backlog slot.)
    pub(crate) fn dispatch(&self, stream: TcpStream) -> bool {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.len();
        let sh = &self.shared[i];
        sh.inbox.lock().push(Inbound::Conn(stream, Instant::now()));
        sh.wake.wake();
        true
    }

    /// Control surface for `open_connections` / `drop_connections`,
    /// cloneable out before the reactor moves into the acceptor thread.
    pub(crate) fn handle(&self) -> ReactorHandle {
        ReactorHandle {
            shared: Arc::clone(&self.shared),
            telemetry: Arc::clone(&self.telemetry),
        }
    }

    /// Stops the loops and the miss executor, joining every thread. The
    /// loops never block in socket I/O, so the stop flag plus an eventfd
    /// wake is enough; each loop closes its own connections on exit
    /// (dropping its conn table), giving keep-alive clients the same EOF
    /// thread mode produces via `ConnRegistry::close_all`.
    pub(crate) fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        for sh in self.shared.iter() {
            sh.wake.wake();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
        // Loops are gone (their Sender clones dropped); dropping ours
        // disconnects the channel and the miss workers exit after their
        // current job.
        drop(self.miss_tx.take());
        for handle in self.miss_workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Blocking executor for requests the loops must not run inline: the whole
/// miss path (disk tier, peer probes with retry backoff, origin fetches,
/// coalesced followers parking on the in-flight condvar). Runs the
/// unchanged `dispatch`, then routes the reply to the owning loop's inbox.
fn miss_worker_loop(
    rx: &Mutex<Receiver<MissJob>>,
    state: &Arc<ProxyState>,
    shared: &Arc<Vec<Arc<LoopShared>>>,
    pool_telemetry: &Arc<PoolTelemetry>,
) {
    loop {
        let job = {
            let rx = rx.lock();
            match rx.recv() {
                Ok(job) => job,
                Err(_) => return,
            }
        };
        pool_telemetry.dequeued(job.enqueued.elapsed());
        pool_telemetry.task_started();
        let mut queue_wait = job.queue_wait;
        let t_verb = Instant::now();
        let verb = verb_index(job.msg.tokens().first());
        let reply = dispatch(&job.msg, job.peer_ip, &mut queue_wait, state);
        state.obs.verbs.record(verb, t_verb.elapsed());
        pool_telemetry.task_finished();
        let sh = &shared[job.loop_id];
        sh.inbox.lock().push(Inbound::Done {
            token: job.token,
            reply,
            fault: job.fault,
            queue_wait,
        });
        sh.wake.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_message, response, status};
    use std::io::BufReader;

    fn frame(msg: &Message) -> Vec<u8> {
        encode_message(msg).unwrap()
    }

    fn sample_request() -> Message {
        Message::new("GET /doc/1 BAPS/1.0")
            .header("Client", "7")
            .header("Trace-Id", "42")
            .with_body(b"hello body".to_vec())
    }

    #[test]
    fn parser_matches_read_message_byte_at_a_time() {
        let msg = sample_request();
        let bytes = frame(&msg);
        let mut parser = FrameParser::new();
        let mut out = None;
        for (i, b) in bytes.iter().enumerate() {
            parser.push(std::slice::from_ref(b));
            if let Some(got) = parser.next().unwrap() {
                assert_eq!(i, bytes.len() - 1, "frame completed exactly at the end");
                out = Some(got);
            }
        }
        let got = out.expect("frame parsed");
        let want = read_message(&mut BufReader::new(&bytes[..]))
            .unwrap()
            .unwrap();
        assert_eq!(got.start, want.start);
        assert_eq!(got.headers, want.headers);
        assert_eq!(&got.body[..], &want.body[..]);
        assert!(parser.is_idle());
    }

    #[test]
    fn parser_handles_pipelined_frames_in_one_push() {
        let a = sample_request();
        let b = response(status::OK, "OK").with_body(b"second".to_vec());
        let mut bytes = frame(&a);
        bytes.extend_from_slice(&frame(&b));
        let mut parser = FrameParser::new();
        parser.push(&bytes);
        let first = parser.next().unwrap().expect("first frame");
        assert_eq!(first.start, a.start);
        let second = parser.next().unwrap().expect("second frame");
        assert_eq!(&second.body[..], b"second");
        assert!(parser.next().unwrap().is_none());
        assert!(parser.is_idle());
    }

    #[test]
    fn parser_accepts_bodyless_frames() {
        let msg = Message::new("STATS BAPS/1.0");
        let mut parser = FrameParser::new();
        parser.push(&frame(&msg));
        let got = parser.next().unwrap().expect("frame");
        assert_eq!(got.start, "STATS BAPS/1.0");
        assert!(got.body.is_empty());
    }

    #[test]
    fn parser_rejects_what_read_message_rejects() {
        // Empty start line.
        let mut p = FrameParser::new();
        p.push(b"\r\n");
        assert_eq!(
            p.next().unwrap_err().kind(),
            io::ErrorKind::InvalidData,
            "empty start line"
        );

        // Header without a colon.
        let mut p = FrameParser::new();
        p.push(b"GET /x BAPS/1.0\r\nnot-a-header\r\n\r\n");
        assert_eq!(p.next().unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Unparseable Content-Length.
        let mut p = FrameParser::new();
        p.push(b"GET /x BAPS/1.0\r\nContent-Length: nope\r\n\r\n");
        assert_eq!(p.next().unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Oversized body declaration.
        let mut p = FrameParser::new();
        let huge = format!(
            "GET /x BAPS/1.0\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY + 1
        );
        p.push(huge.as_bytes());
        assert_eq!(p.next().unwrap_err().kind(), io::ErrorKind::InvalidData);

        // Too many headers.
        let mut p = FrameParser::new();
        let mut many = String::from("GET /x BAPS/1.0\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        p.push(many.as_bytes());
        assert_eq!(p.next().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn parser_caps_unterminated_heads() {
        let mut p = FrameParser::new();
        p.push(&vec![b'a'; MAX_HEAD_BYTES + 2]);
        assert_eq!(p.next().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    /// Writer that accepts at most `cap` bytes per call and then a
    /// `WouldBlock`, like a full socket send buffer.
    struct Throttled {
        out: Vec<u8>,
        cap: usize,
        blocked: bool,
    }

    impl Write for Throttled {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.blocked {
                self.blocked = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
            }
            let n = buf.len().min(self.cap);
            self.out.extend_from_slice(&buf[..n]);
            self.blocked = true;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_queue_resumes_after_eagain_across_segments() {
        let reply = response(status::OK, "OK").with_body(b"shared-body-bytes".to_vec());
        let head = encode_head(&reply).unwrap();
        let mut expected = head.clone().into_bytes();
        expected.extend_from_slice(&reply.body);

        let mut wq = WriteQueue::new();
        wq.push_owned(head.into_bytes());
        wq.push_shared(Arc::clone(&reply.body));

        let mut sink = Throttled {
            out: Vec::new(),
            cap: 5,
            blocked: false,
        };
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 1000, "flush must terminate");
            match wq.flush(&mut sink) {
                Ok(true) => break,
                Ok(false) => continue, // EAGAIN: a real loop would re-arm EPOLLOUT
                Err(e) => panic!("unexpected write error: {e}"),
            }
        }
        assert!(wq.is_empty());
        assert_eq!(
            sink.out, expected,
            "byte-exact frame despite partial writes"
        );
    }
}
