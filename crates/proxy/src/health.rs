//! The SLO health engine behind the `HEALTH BAPS/1.0` verb (DESIGN.md
//! §14).
//!
//! A background sampler captures the proxy's cumulative counters and
//! latency histograms into a [`WindowRing`] once per second; every
//! `HEALTH` request forces one more capture (so a scrape always sees
//! data no older than the request itself) and then evaluates the
//! declarative rule table on [`ProxyConfig`](crate::ProxyConfig) against
//! rolling windows differenced out of the ring. The verdict document
//! reports, per rule, the observed value, the thresholds, an
//! `ok|warn|critical` verdict, and — for request-facing rules that fired
//! — the tail-latency exemplar trace ids currently held by the tier
//! histograms, each resolvable to a full span tree via `TRACE BAPS/1.0`.
//!
//! Windows are *differences of cumulative captures* (see
//! [`baps_obs::window`]), so a rate can never go negative and a torn
//! read is impossible by construction; the only freshness caveat is that
//! a window's span is reported honestly (`span_s`) and may exceed the
//! asked-for width when captures are sparse.

use crate::proxy::ProxyState;
use baps_obs::window::{push_hist, WindowRing, WindowSchema, WindowSnapshot, DEFAULT_CAPACITY};
use baps_obs::LatencyHistogram;
use parking_lot::Mutex;
use std::time::Instant;

/// Capture layout: counter slots in every window capture.
pub(crate) const WIN_REQUESTS: usize = 0;
pub(crate) const WIN_ERRORS: usize = 1;
pub(crate) const WIN_ORIGIN_FETCHES: usize = 2;
pub(crate) const WIN_PEER_FALLBACKS: usize = 3;
pub(crate) const WIN_COALESCED: usize = 4;
pub(crate) const WIN_RECORDER_SHED: usize = 5;
pub(crate) const WIN_QUEUE_REJECTED: usize = 6;
const WIN_COUNTERS: usize = 7;

/// Capture layout: histogram slots (after the counters).
pub(crate) const WIN_HIST_REQUEST: usize = 0;
pub(crate) const WIN_HIST_QUEUE_WAIT: usize = 1;
const WIN_HISTS: usize = 2;

/// The schema every proxy window capture follows.
fn schema() -> WindowSchema {
    WindowSchema {
        counters: WIN_COUNTERS,
        hists: WIN_HISTS,
    }
}

/// The rolling windows every `HEALTH` reply reports rates for.
pub const REPORT_WINDOWS: [u64; 3] = [1, 10, 60];

/// Most exemplar trace ids attached to one offending rule.
const MAX_RULE_EXEMPLARS: usize = 8;

/// The proxy's window ring plus the capture clock that feeds it.
///
/// Captures come from two places — the 1 Hz sampler thread and forced
/// captures on every `HEALTH` request (plus the
/// [`sample_windows_now`](crate::ProxyServer::sample_windows_now) test
/// hook) — so the tick counter is a mutex, serializing writers as the
/// ring's seqlock slots require. A forced capture always advances the
/// tick by at least one second even when the wall clock has not moved,
/// which is what lets deterministic tests bracket a burst with two
/// captures and difference them.
pub(crate) struct ProxyWindows {
    ring: WindowRing,
    started: Instant,
    /// Last capture tick, `None` before the first capture.
    tick: Mutex<Option<u64>>,
}

impl ProxyWindows {
    pub(crate) fn new() -> ProxyWindows {
        ProxyWindows {
            ring: WindowRing::new(schema(), DEFAULT_CAPACITY),
            started: Instant::now(),
            tick: Mutex::new(None),
        }
    }

    /// Seconds since this proxy incarnation started.
    pub(crate) fn uptime_secs(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    pub(crate) fn ring(&self) -> &WindowRing {
        &self.ring
    }

    /// Sampler path: captures only when a new wall second has arrived,
    /// so the ring holds at most one capture per second of uptime.
    pub(crate) fn maybe_capture(&self, state: &ProxyState) {
        let sec = self.started.elapsed().as_secs();
        let mut tick = self.tick.lock();
        if tick.is_some_and(|t| t >= sec) {
            return;
        }
        *tick = Some(sec);
        self.ring.ingest(sec, &capture_values(state));
    }

    /// Forced capture (`HEALTH` request or test hook): always lands,
    /// advancing the tick past the wall clock if necessary.
    pub(crate) fn force_capture(&self, state: &ProxyState) {
        let sec = self.started.elapsed().as_secs();
        let mut tick = self.tick.lock();
        let next = match *tick {
            Some(t) => sec.max(t + 1),
            None => sec,
        };
        *tick = Some(next);
        self.ring.ingest(next, &capture_values(state));
    }
}

/// One cumulative capture of everything the SLO rules consume.
fn capture_values(state: &ProxyState) -> Vec<u64> {
    let s = state.stats();
    let sat = state.telemetry.snapshot();
    let mut v = Vec::with_capacity(schema().width());
    v.push(s.requests);
    v.push(s.errors);
    v.push(s.origin_fetches);
    v.push(s.peer_fallbacks);
    v.push(s.coalesced_fetches);
    v.push(state.obs.recorder.dropped());
    v.push(sat.rejected);
    let mut request = LatencyHistogram::new();
    for (_, h) in state.obs.tiers.iter() {
        request.merge(&h);
    }
    push_hist(&mut v, &request);
    push_hist(&mut v, &sat.queue_wait);
    v
}

/// What a rule measures over its window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloSignal {
    /// Errors per request (0 when the window saw no requests).
    ErrorRate,
    /// Peer→origin fallbacks per request: how often the peer path failed
    /// and the request degraded to an origin fetch.
    OriginFallbackRate,
    /// p999 of client-facing GET latency, milliseconds (all tiers merged).
    RequestP999Ms,
    /// p99 of accept-backlog / miss-executor queue wait, milliseconds.
    QueueWaitP99Ms,
    /// Flight-recorder events shed per second (ring contention).
    RecorderShedPerSec,
    /// Instantaneous gauge: deepest `epoll_wait` ready batch since start
    /// (0 in `Threads` mode, where no reactor exists).
    ReactorReadyDepth,
}

impl SloSignal {
    /// Stable wire name, as emitted in the verdict document.
    pub fn name(self) -> &'static str {
        match self {
            SloSignal::ErrorRate => "error_rate",
            SloSignal::OriginFallbackRate => "origin_fallback_rate",
            SloSignal::RequestP999Ms => "request_p999_ms",
            SloSignal::QueueWaitP99Ms => "queue_wait_p99_ms",
            SloSignal::RecorderShedPerSec => "recorder_shed_per_s",
            SloSignal::ReactorReadyDepth => "reactor_ready_depth",
        }
    }

    /// Inverse of [`SloSignal::name`].
    pub fn parse(s: &str) -> Option<SloSignal> {
        Some(match s {
            "error_rate" => SloSignal::ErrorRate,
            "origin_fallback_rate" => SloSignal::OriginFallbackRate,
            "request_p999_ms" => SloSignal::RequestP999Ms,
            "queue_wait_p99_ms" => SloSignal::QueueWaitP99Ms,
            "recorder_shed_per_s" => SloSignal::RecorderShedPerSec,
            "reactor_ready_depth" => SloSignal::ReactorReadyDepth,
            _ => return None,
        })
    }

    /// Whether offending-exemplar trace ids (from the GET tier
    /// histograms' tail buckets) are attached when this rule fires.
    /// Queue wait, recorder shed and reactor depth are not traced per
    /// request, so they have no exemplars to offer.
    fn request_facing(self) -> bool {
        matches!(
            self,
            SloSignal::ErrorRate | SloSignal::OriginFallbackRate | SloSignal::RequestP999Ms
        )
    }
}

/// One declarative SLO rule: a signal, the window it is evaluated over,
/// and the two thresholds. `value >= critical` is critical, `value >=
/// warn` is warn, below is ok (thresholds are inclusive ceilings).
#[derive(Debug, Clone)]
pub struct SloRule {
    /// Operator-facing rule name (one token, no spaces).
    pub name: String,
    /// What the rule measures.
    pub signal: SloSignal,
    /// Window width in seconds ([`SloSignal::ReactorReadyDepth`] is an
    /// instantaneous gauge and ignores this).
    pub window_secs: u64,
    /// At or above this, the verdict is at least `warn`.
    pub warn: f64,
    /// At or above this, the verdict is `critical`.
    pub critical: f64,
}

impl SloRule {
    /// Convenience constructor.
    pub fn new(name: &str, signal: SloSignal, window_secs: u64, warn: f64, critical: f64) -> Self {
        SloRule {
            name: name.to_string(),
            signal,
            window_secs,
            warn,
            critical,
        }
    }

    fn judge(&self, value: f64) -> Verdict {
        if value >= self.critical {
            Verdict::Critical
        } else if value >= self.warn {
            Verdict::Warn
        } else {
            Verdict::Ok
        }
    }
}

/// The rule table evaluated by every `HEALTH` request; lives on
/// [`ProxyConfig`](crate::ProxyConfig).
#[derive(Debug, Clone)]
pub struct SloTable {
    /// Rules, evaluated in order; the document verdict is the worst rule
    /// verdict.
    pub rules: Vec<SloRule>,
}

impl Default for SloTable {
    /// Deliberately generous defaults: they flag a proxy that is broken
    /// (sustained error burn, multi-second tails, all requests falling
    /// through peers to origin), not one that is merely busy. Deployments
    /// with real objectives replace the table wholesale.
    fn default() -> SloTable {
        SloTable {
            rules: vec![
                SloRule::new("error_burn", SloSignal::ErrorRate, 10, 0.05, 0.25),
                SloRule::new("p999_ceiling", SloSignal::RequestP999Ms, 60, 500.0, 5000.0),
                SloRule::new(
                    "origin_fallback",
                    SloSignal::OriginFallbackRate,
                    10,
                    0.25,
                    0.75,
                ),
                SloRule::new("queue_wait", SloSignal::QueueWaitP99Ms, 10, 100.0, 1000.0),
                SloRule::new(
                    "recorder_shed",
                    SloSignal::RecorderShedPerSec,
                    10,
                    1_000.0,
                    100_000.0,
                ),
                SloRule::new(
                    "reactor_ready_depth",
                    SloSignal::ReactorReadyDepth,
                    1,
                    1024.0,
                    8192.0,
                ),
            ],
        }
    }
}

/// Per-rule or whole-document health verdict. Ordered: `Ok < Warn <
/// Critical`, so `max` combines verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verdict {
    /// Within objectives.
    Ok,
    /// At or above the warn threshold.
    Warn,
    /// At or above the critical threshold.
    Critical,
}

impl Verdict {
    /// Stable lowercase wire name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Warn => "warn",
            Verdict::Critical => "critical",
        }
    }

    /// Inverse of [`Verdict::name`].
    pub fn parse(s: &str) -> Option<Verdict> {
        Some(match s {
            "ok" => Verdict::Ok,
            "warn" => Verdict::Warn,
            "critical" => Verdict::Critical,
            _ => return None,
        })
    }
}

/// Rolling-rate line for one report window.
#[derive(Debug, Clone, Default)]
pub struct WindowRates {
    /// Asked-for window width, seconds.
    pub window_secs: u64,
    /// Actual span between the window's endpoint captures (0 = no data).
    pub span_secs: u64,
    /// Requests answered in the window.
    pub requests: u64,
    /// Errors in the window.
    pub errors: u64,
    /// Origin fetches in the window.
    pub origin_fetches: u64,
    /// Coalesced (herd-shared) fetches in the window.
    pub coalesced: u64,
    /// Connections rejected at the accept backlog / offload queue.
    pub rejected: u64,
    /// Requests per second over the span.
    pub req_per_s: f64,
    /// Errors per second over the span.
    pub err_per_s: f64,
    /// Windowed GET latency p99, milliseconds.
    pub p99_ms: f64,
    /// Windowed GET latency p999, milliseconds.
    pub p999_ms: f64,
}

/// One evaluated rule in a health report.
#[derive(Debug, Clone)]
pub struct RuleVerdict {
    /// Rule name from the table.
    pub name: String,
    /// The measured signal.
    pub signal: SloSignal,
    /// Asked-for window, seconds.
    pub window_secs: u64,
    /// Actual span of the evaluated window (0 = no data; gauges too).
    pub span_secs: u64,
    /// Observed value in the signal's unit.
    pub value: f64,
    /// Warn threshold.
    pub warn: f64,
    /// Critical threshold.
    pub critical: f64,
    /// This rule's verdict.
    pub verdict: Verdict,
    /// Tail-latency exemplar trace ids attached when a request-facing
    /// rule fires (each resolvable via `TRACE BAPS/1.0`).
    pub exemplars: Vec<u64>,
}

/// The parsed/renderable `HEALTH BAPS/1.0` verdict document.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst rule verdict (`ok` when every rule passes).
    pub verdict: Verdict,
    /// Seconds since this proxy incarnation started.
    pub uptime_secs: u64,
    /// Serving mode (`threads` or `reactor`).
    pub io_mode: String,
    /// Rolling rates for each of [`REPORT_WINDOWS`].
    pub windows: Vec<WindowRates>,
    /// Every rule in table order.
    pub rules: Vec<RuleVerdict>,
}

impl HealthReport {
    /// Rules that did not come back `ok`.
    pub fn offending(&self) -> impl Iterator<Item = &RuleVerdict> {
        self.rules.iter().filter(|r| r.verdict != Verdict::Ok)
    }

    /// Finds a rule by name.
    pub fn rule(&self, name: &str) -> Option<&RuleVerdict> {
        self.rules.iter().find(|r| r.name == name)
    }

    /// Renders the body of the `HEALTH` reply (`key=value` lines; one
    /// `window=` line per report window, one `rule=` line per rule).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("uptime_s={}\n", self.uptime_secs));
        out.push_str(&format!("io_mode={}\n", self.io_mode));
        out.push_str(&format!("verdict={}\n", self.verdict.name()));
        for w in &self.windows {
            out.push_str(&format!(
                "window={} span_s={} requests={} errors={} origin={} \
                 coalesced={} rejected={} req_per_s={:.3} err_per_s={:.3} \
                 p99_ms={:.3} p999_ms={:.3}\n",
                w.window_secs,
                w.span_secs,
                w.requests,
                w.errors,
                w.origin_fetches,
                w.coalesced,
                w.rejected,
                w.req_per_s,
                w.err_per_s,
                w.p99_ms,
                w.p999_ms,
            ));
        }
        for r in &self.rules {
            let exemplars = if r.exemplars.is_empty() {
                "-".to_string()
            } else {
                r.exemplars
                    .iter()
                    .map(|t| format!("{t:016x}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!(
                "rule={} signal={} window_s={} span_s={} value={:.6} \
                 warn={:.6} critical={:.6} verdict={} exemplars={exemplars}\n",
                r.name,
                r.signal.name(),
                r.window_secs,
                r.span_secs,
                r.value,
                r.warn,
                r.critical,
                r.verdict.name(),
            ));
        }
        out
    }

    /// Parses a rendered verdict document (the `HEALTH` reply body).
    /// Strict on structure — unknown keys are errors, so drift between
    /// proxy and tooling fails loudly in CI instead of silently.
    pub fn parse(text: &str) -> Result<HealthReport, String> {
        let mut uptime_secs = None;
        let mut io_mode = None;
        let mut verdict = None;
        let mut windows = Vec::new();
        let mut rules = Vec::new();
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let fields = parse_kv_line(line).map_err(|e| format!("line {}: {e}", n + 1))?;
            let err = |e: String| format!("line {}: {e}", n + 1);
            match fields[0].0 {
                "uptime_s" => uptime_secs = Some(num(&fields, "uptime_s").map_err(err)? as u64),
                "io_mode" => io_mode = Some(get(&fields, "io_mode").map_err(err)?.to_string()),
                "verdict" => {
                    let v = get(&fields, "verdict").map_err(err)?;
                    verdict =
                        Some(Verdict::parse(v).ok_or_else(|| err(format!("bad verdict {v:?}")))?);
                }
                "window" => windows.push(parse_window_line(&fields).map_err(err)?),
                "rule" => rules.push(parse_rule_line(&fields).map_err(err)?),
                other => return Err(err(format!("unknown line kind {other:?}"))),
            }
        }
        Ok(HealthReport {
            verdict: verdict.ok_or("missing verdict line")?,
            uptime_secs: uptime_secs.ok_or("missing uptime_s line")?,
            io_mode: io_mode.ok_or("missing io_mode line")?,
            windows,
            rules,
        })
    }
}

type Fields<'a> = Vec<(&'a str, &'a str)>;

fn parse_kv_line(line: &str) -> Result<Fields<'_>, String> {
    line.split_ascii_whitespace()
        .map(|tok| {
            tok.split_once('=')
                .ok_or_else(|| format!("token {tok:?} is not key=value"))
        })
        .collect()
}

fn get<'a>(fields: &Fields<'a>, key: &str) -> Result<&'a str, String> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| format!("missing key {key:?}"))
}

fn num(fields: &Fields<'_>, key: &str) -> Result<f64, String> {
    let v = get(fields, key)?;
    v.parse::<f64>()
        .map_err(|_| format!("key {key:?} has non-numeric value {v:?}"))
}

fn parse_window_line(fields: &Fields<'_>) -> Result<WindowRates, String> {
    Ok(WindowRates {
        window_secs: num(fields, "window")? as u64,
        span_secs: num(fields, "span_s")? as u64,
        requests: num(fields, "requests")? as u64,
        errors: num(fields, "errors")? as u64,
        origin_fetches: num(fields, "origin")? as u64,
        coalesced: num(fields, "coalesced")? as u64,
        rejected: num(fields, "rejected")? as u64,
        req_per_s: num(fields, "req_per_s")?,
        err_per_s: num(fields, "err_per_s")?,
        p99_ms: num(fields, "p99_ms")?,
        p999_ms: num(fields, "p999_ms")?,
    })
}

fn parse_rule_line(fields: &Fields<'_>) -> Result<RuleVerdict, String> {
    let signal_name = get(fields, "signal")?;
    let signal =
        SloSignal::parse(signal_name).ok_or_else(|| format!("unknown signal {signal_name:?}"))?;
    let verdict_name = get(fields, "verdict")?;
    let verdict =
        Verdict::parse(verdict_name).ok_or_else(|| format!("bad verdict {verdict_name:?}"))?;
    let raw = get(fields, "exemplars")?;
    let exemplars = if raw == "-" {
        Vec::new()
    } else {
        raw.split(',')
            .map(|t| {
                if t.len() != 16 || !t.bytes().all(|b| b.is_ascii_hexdigit()) {
                    return Err(format!("exemplar {t:?} is not 16 hex digits"));
                }
                u64::from_str_radix(t, 16).map_err(|_| format!("bad exemplar {t:?}"))
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok(RuleVerdict {
        name: get(fields, "rule")?.to_string(),
        signal,
        window_secs: num(fields, "window_s")? as u64,
        span_secs: num(fields, "span_s")? as u64,
        value: num(fields, "value")?,
        warn: num(fields, "warn")?,
        critical: num(fields, "critical")?,
        verdict,
        exemplars,
    })
}

/// Evaluates the configured rule table over the current windows. The
/// caller (the `HEALTH` dispatch arm, or the
/// [`health`](crate::ProxyServer::health) hook) forces a capture first,
/// so every evaluation sees data at least as fresh as the request.
pub(crate) fn evaluate(state: &ProxyState) -> HealthReport {
    let ring = state.windows.ring();
    let windows = REPORT_WINDOWS
        .iter()
        .map(|&want| window_rates(ring.window(want), want))
        .collect();
    // Tail exemplars are read once per evaluation, not per rule: every
    // request-facing rule that fires shares the same "these are the slow
    // traces right now" evidence.
    let mut tail_exemplars: Vec<u64> = Vec::new();
    for (_, _, exemplars) in state.obs.tiers.iter_with_exemplars() {
        for t in exemplars {
            if t != 0 && !tail_exemplars.contains(&t) {
                tail_exemplars.push(t);
            }
        }
    }
    tail_exemplars.truncate(MAX_RULE_EXEMPLARS);
    let mut rules = Vec::with_capacity(state.config.slo.rules.len());
    let mut worst = Verdict::Ok;
    for rule in &state.config.slo.rules {
        let (value, span_secs) = measure(state, rule);
        let verdict = rule.judge(value);
        worst = worst.max(verdict);
        let exemplars = if verdict != Verdict::Ok && rule.signal.request_facing() {
            tail_exemplars.clone()
        } else {
            Vec::new()
        };
        rules.push(RuleVerdict {
            name: rule.name.clone(),
            signal: rule.signal,
            window_secs: rule.window_secs,
            span_secs,
            value,
            warn: rule.warn,
            critical: rule.critical,
            verdict,
            exemplars,
        });
    }
    HealthReport {
        verdict: worst,
        uptime_secs: state.windows.uptime_secs(),
        io_mode: state.config.io_mode.name().to_string(),
        windows,
        rules,
    }
}

/// Measures one rule's signal: `(value, span_secs)`. A missing window
/// (fewer than two captures retained) measures as 0 over a 0-second
/// span — "no data" is not an alert.
fn measure(state: &ProxyState, rule: &SloRule) -> (f64, u64) {
    if rule.signal == SloSignal::ReactorReadyDepth {
        let depth = state
            .reactor
            .as_ref()
            .map(|r| r.snapshot().ready_batch_peak as f64)
            .unwrap_or(0.0);
        return (depth, 0);
    }
    let Some(w) = state.windows.ring().window(rule.window_secs) else {
        return (0.0, 0);
    };
    let span = w.span_secs();
    let value = match rule.signal {
        SloSignal::ErrorRate => per_request(&w, WIN_ERRORS),
        SloSignal::OriginFallbackRate => per_request(&w, WIN_PEER_FALLBACKS),
        SloSignal::RequestP999Ms => w.hist(WIN_HIST_REQUEST).quantile_ms(0.999),
        SloSignal::QueueWaitP99Ms => w.hist(WIN_HIST_QUEUE_WAIT).quantile_ms(0.99),
        SloSignal::RecorderShedPerSec => w.rate(WIN_RECORDER_SHED),
        SloSignal::ReactorReadyDepth => unreachable!("handled above"),
    };
    (value, span)
}

fn per_request(w: &WindowSnapshot, counter: usize) -> f64 {
    let requests = w.counter(WIN_REQUESTS);
    if requests == 0 {
        0.0
    } else {
        w.counter(counter) as f64 / requests as f64
    }
}

fn window_rates(w: Option<WindowSnapshot>, want: u64) -> WindowRates {
    let Some(w) = w else {
        return WindowRates {
            window_secs: want,
            ..WindowRates::default()
        };
    };
    let hist = w.hist(WIN_HIST_REQUEST);
    WindowRates {
        window_secs: want,
        span_secs: w.span_secs(),
        requests: w.counter(WIN_REQUESTS),
        errors: w.counter(WIN_ERRORS),
        origin_fetches: w.counter(WIN_ORIGIN_FETCHES),
        coalesced: w.counter(WIN_COALESCED),
        rejected: w.counter(WIN_QUEUE_REJECTED),
        req_per_s: w.rate(WIN_REQUESTS),
        err_per_s: w.rate(WIN_ERRORS),
        p99_ms: hist.quantile_ms(0.99),
        p999_ms: hist.quantile_ms(0.999),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> HealthReport {
        HealthReport {
            verdict: Verdict::Warn,
            uptime_secs: 42,
            io_mode: "threads".to_string(),
            windows: vec![WindowRates {
                window_secs: 10,
                span_secs: 10,
                requests: 1000,
                errors: 40,
                origin_fetches: 7,
                coalesced: 3,
                rejected: 1,
                req_per_s: 100.0,
                err_per_s: 4.0,
                p99_ms: 12.5,
                p999_ms: 80.25,
            }],
            rules: vec![
                RuleVerdict {
                    name: "error_burn".to_string(),
                    signal: SloSignal::ErrorRate,
                    window_secs: 10,
                    span_secs: 10,
                    value: 0.04,
                    warn: 0.01,
                    critical: 0.25,
                    verdict: Verdict::Warn,
                    exemplars: vec![0xdead_beef_0000_0001, 2],
                },
                RuleVerdict {
                    name: "queue_wait".to_string(),
                    signal: SloSignal::QueueWaitP99Ms,
                    window_secs: 10,
                    span_secs: 10,
                    value: 1.5,
                    warn: 100.0,
                    critical: 1000.0,
                    verdict: Verdict::Ok,
                    exemplars: vec![],
                },
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_render_and_parse() {
        let report = sample_report();
        let parsed = HealthReport::parse(&report.render()).expect("parses");
        assert_eq!(parsed.verdict, Verdict::Warn);
        assert_eq!(parsed.uptime_secs, 42);
        assert_eq!(parsed.io_mode, "threads");
        assert_eq!(parsed.windows.len(), 1);
        assert_eq!(parsed.windows[0].requests, 1000);
        assert!((parsed.windows[0].p999_ms - 80.25).abs() < 1e-9);
        assert_eq!(parsed.rules.len(), 2);
        let burn = parsed.rule("error_burn").expect("rule present");
        assert_eq!(burn.signal, SloSignal::ErrorRate);
        assert_eq!(burn.verdict, Verdict::Warn);
        assert_eq!(burn.exemplars, vec![0xdead_beef_0000_0001, 2]);
        assert_eq!(
            parsed.rule("queue_wait").unwrap().exemplars,
            Vec::<u64>::new()
        );
        assert_eq!(parsed.offending().count(), 1);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(HealthReport::parse("").is_err(), "empty doc lacks verdict");
        assert!(
            HealthReport::parse("verdict=ok\n").is_err(),
            "missing uptime"
        );
        let ok = sample_report().render();
        assert!(HealthReport::parse(&ok.replace("verdict=warn", "verdict=wat")).is_err());
        assert!(HealthReport::parse(&ok.replace("signal=error_rate", "signal=x")).is_err());
        assert!(HealthReport::parse(&(ok.clone() + "mystery=1\n")).is_err());
        assert!(HealthReport::parse(&ok.replace(
            "exemplars=deadbeef00000001,0000000000000002",
            "exemplars=xyz"
        ))
        .is_err());
    }

    #[test]
    fn thresholds_are_inclusive_ceilings() {
        let rule = SloRule::new("r", SloSignal::ErrorRate, 10, 0.1, 0.5);
        assert_eq!(rule.judge(0.099), Verdict::Ok);
        assert_eq!(rule.judge(0.1), Verdict::Warn);
        assert_eq!(rule.judge(0.499), Verdict::Warn);
        assert_eq!(rule.judge(0.5), Verdict::Critical);
        assert_eq!(rule.judge(f64::INFINITY), Verdict::Critical);
    }

    #[test]
    fn verdicts_combine_by_max() {
        assert_eq!(Verdict::Ok.max(Verdict::Warn), Verdict::Warn);
        assert_eq!(Verdict::Critical.max(Verdict::Warn), Verdict::Critical);
        assert!(Verdict::Ok < Verdict::Warn && Verdict::Warn < Verdict::Critical);
    }

    #[test]
    fn default_table_names_are_unique_and_signals_parse() {
        let table = SloTable::default();
        let mut names: Vec<&str> = table.rules.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), table.rules.len(), "duplicate rule names");
        for rule in &table.rules {
            assert_eq!(SloSignal::parse(rule.signal.name()), Some(rule.signal));
            assert!(rule.warn <= rule.critical);
        }
    }
}
