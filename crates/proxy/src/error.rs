//! Error type of the live proxy components.

use baps_crypto::CryptoError;
use std::fmt;
use std::io;

/// Failures surfaced by the live proxy, clients and origin.
#[derive(Debug)]
pub enum ProxyError {
    /// Transport failure.
    Io(io::Error),
    /// The peer spoke the protocol incorrectly.
    Protocol(String),
    /// The document was not found at the origin.
    NotFound(String),
    /// Integrity verification failed even after bypassing peers.
    Integrity(CryptoError),
    /// A direct peer delivery never arrived within the timeout.
    DeliveryTimeout,
    /// A socket read/write deadline expired (stalled peer). Retryable.
    Timeout,
    /// The proxy answered 5xx (origin unreachable after its own retries).
    /// Retryable; carries the status code.
    Unavailable(u16),
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Io(e) => write!(f, "io error: {e}"),
            ProxyError::Protocol(m) => write!(f, "protocol error: {m}"),
            ProxyError::NotFound(url) => write!(f, "document not found: {url}"),
            ProxyError::Integrity(e) => write!(f, "integrity failure: {e}"),
            ProxyError::DeliveryTimeout => write!(f, "direct peer delivery timed out"),
            ProxyError::Timeout => write!(f, "socket deadline expired"),
            ProxyError::Unavailable(code) => write!(f, "service unavailable ({code})"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Io(e) => Some(e),
            ProxyError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl ProxyError {
    /// Whether retrying the same request later could plausibly succeed
    /// (transient transport or backend failures, not protocol/content
    /// errors). [`crate::client::ClientAgent::fetch`] backs off and
    /// retries exactly these.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ProxyError::Io(_) | ProxyError::Timeout | ProxyError::Unavailable(_)
        )
    }
}

impl From<io::Error> for ProxyError {
    fn from(e: io::Error) -> Self {
        // `set_read_timeout` expiry surfaces as WouldBlock on Unix and
        // TimedOut on Windows; both mean "deadline expired".
        match e.kind() {
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ProxyError::Timeout,
            _ => ProxyError::Io(e),
        }
    }
}

impl From<CryptoError> for ProxyError {
    fn from(e: CryptoError) -> Self {
        ProxyError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProxyError::NotFound("u".into()).to_string().contains("u"));
        assert!(ProxyError::Protocol("bad".into())
            .to_string()
            .contains("bad"));
        let io_err: ProxyError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }

    #[test]
    fn io_deadline_kinds_map_to_timeout() {
        let e: ProxyError = io::Error::new(io::ErrorKind::WouldBlock, "deadline").into();
        assert!(matches!(e, ProxyError::Timeout));
        let e: ProxyError = io::Error::new(io::ErrorKind::TimedOut, "deadline").into();
        assert!(matches!(e, ProxyError::Timeout));
        let e: ProxyError = io::Error::other("hard").into();
        assert!(matches!(e, ProxyError::Io(_)));
    }

    #[test]
    fn retryability_classification() {
        assert!(ProxyError::Timeout.is_retryable());
        assert!(ProxyError::Unavailable(503).is_retryable());
        assert!(ProxyError::Io(io::Error::other("x")).is_retryable());
        assert!(!ProxyError::NotFound("u".into()).is_retryable());
        assert!(!ProxyError::Protocol("p".into()).is_retryable());
        assert!(!ProxyError::DeliveryTimeout.is_retryable());
    }
}
