//! Error type of the live proxy components.

use baps_crypto::CryptoError;
use std::fmt;
use std::io;

/// Failures surfaced by the live proxy, clients and origin.
#[derive(Debug)]
pub enum ProxyError {
    /// Transport failure.
    Io(io::Error),
    /// The peer spoke the protocol incorrectly.
    Protocol(String),
    /// The document was not found at the origin.
    NotFound(String),
    /// Integrity verification failed even after bypassing peers.
    Integrity(CryptoError),
    /// A direct peer delivery never arrived within the timeout.
    DeliveryTimeout,
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Io(e) => write!(f, "io error: {e}"),
            ProxyError::Protocol(m) => write!(f, "protocol error: {m}"),
            ProxyError::NotFound(url) => write!(f, "document not found: {url}"),
            ProxyError::Integrity(e) => write!(f, "integrity failure: {e}"),
            ProxyError::DeliveryTimeout => write!(f, "direct peer delivery timed out"),
        }
    }
}

impl std::error::Error for ProxyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProxyError::Io(e) => Some(e),
            ProxyError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ProxyError {
    fn from(e: io::Error) -> Self {
        ProxyError::Io(e)
    }
}

impl From<CryptoError> for ProxyError {
    fn from(e: CryptoError) -> Self {
        ProxyError::Integrity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ProxyError::NotFound("u".into()).to_string().contains("u"));
        assert!(ProxyError::Protocol("bad".into())
            .to_string()
            .contains("bad"));
        let io_err: ProxyError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }
}
