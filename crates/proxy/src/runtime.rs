//! Test-bed harness: origin + proxy + N client agents on loopback.

use crate::client::{ClientAgent, ClientConfig};
use crate::disk::DiskConfig;
use crate::error::ProxyError;
use crate::fault::FaultPlan;
use crate::health::SloTable;
use crate::origin::OriginServer;
use crate::proxy::{IoMode, ProxyConfig, ProxyServer};
use crate::store::DocumentStore;
use baps_obs::FlightRecorder;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a full loopback deployment.
#[derive(Debug, Clone)]
pub struct TestBedConfig {
    /// Number of client agents.
    pub n_clients: u32,
    /// Proxy cache capacity, bytes.
    pub proxy_capacity: u64,
    /// Per-client browser cache capacity, bytes.
    pub browser_capacity: u64,
    /// Whether the proxy absorbs peer-served documents.
    pub cache_peer_hits: bool,
    /// Use direct client-to-client forwarding instead of proxy relay.
    pub direct_forward: bool,
    /// Seed for the proxy's key pair.
    pub key_seed: u64,
    /// Proxy connection-serving mode: the bounded worker pool (default)
    /// or the epoll reactor (DESIGN.md §13).
    pub io_mode: IoMode,
    /// Proxy worker threads. `0` (the default) sizes the pool
    /// automatically: one worker per client's keep-alive connection plus
    /// headroom for one-shot administrative connections. In reactor mode
    /// the same count sizes the blocking miss executor, preserving the
    /// thread-mode concurrency envelope for miss-path work.
    pub proxy_workers: usize,
    /// Proxy accept backlog. `0` (the default) uses the library default.
    pub proxy_backlog: usize,
    /// Client-side deadline on the proxy connection (`Duration::ZERO`
    /// disables it).
    pub client_timeout: Duration,
    /// Extra client fetch attempts for retryable failures.
    pub client_retries: u32,
    /// Proxy-side deadline for peer probes (`Duration::ZERO` uses the
    /// library default).
    pub peer_timeout: Duration,
    /// Extra proxy attempts per failed peer probe.
    pub peer_retries: u32,
    /// Proxy-side deadline for origin fetches (`Duration::ZERO` uses the
    /// library default).
    pub origin_timeout: Duration,
    /// Extra proxy attempts per failed origin fetch.
    pub origin_retries: u32,
    /// Shared fault plan wired into the origin, proxy, and every client's
    /// peer-serving loop (chaos testing). `None` runs everything honest.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Flight-recorder ring capacity (events). `0` uses
    /// [`FlightRecorder::DEFAULT_CAPACITY`]. One ring is shared by the
    /// origin, the proxy, and every client, so a dump interleaves all
    /// sides of each traced request.
    pub recorder_capacity: usize,
    /// Root directory for the proxy's persistent disk tier. `None` (the
    /// default) runs the proxy memory-only.
    pub disk_root: Option<PathBuf>,
    /// Disk-tier capacity in body bytes (used when `disk_root` is set).
    pub disk_capacity: u64,
    /// Disk-tier freshness TTL (used when `disk_root` is set). Entries
    /// older than this revalidate against the origin before being served.
    pub disk_ttl: Duration,
    /// SLO rule table the proxy's `HEALTH BAPS/1.0` verb evaluates.
    /// Chaos/bench runs calibrate these thresholds to the workload
    /// envelope they drive (the library defaults only flag a *broken*
    /// proxy, not a deliberately tormented one).
    pub slo: SloTable,
}

impl Default for TestBedConfig {
    fn default() -> Self {
        TestBedConfig {
            n_clients: 4,
            proxy_capacity: 64 << 10,
            browser_capacity: 32 << 10,
            cache_peer_hits: false,
            direct_forward: false,
            key_seed: 0xbaf5,
            io_mode: IoMode::default(),
            proxy_workers: 0,
            proxy_backlog: 0,
            client_timeout: Duration::from_secs(5),
            client_retries: 2,
            peer_timeout: Duration::ZERO,
            peer_retries: 1,
            origin_timeout: Duration::ZERO,
            origin_retries: 1,
            fault_plan: None,
            recorder_capacity: 0,
            disk_root: None,
            disk_capacity: 1 << 20,
            disk_ttl: Duration::from_secs(3600),
            slo: SloTable::default(),
        }
    }
}

/// A fully wired origin + proxy + clients deployment.
pub struct TestBed {
    /// The origin server.
    pub origin: OriginServer,
    /// The browsers-aware proxy.
    pub proxy: ProxyServer,
    /// The client agents.
    pub clients: Vec<ClientAgent>,
    /// The deployment-wide flight recorder (also reachable through
    /// `proxy.recorder()` / any client's `recorder()`).
    pub recorder: Arc<FlightRecorder>,
}

impl TestBed {
    /// Starts everything on ephemeral loopback ports.
    pub fn start(store: DocumentStore, config: TestBedConfig) -> Result<TestBed, ProxyError> {
        // Every client keeps one persistent connection to the proxy, and
        // each open connection occupies a proxy worker — so the automatic
        // sizing scales with the client count (plus headroom for one-shot
        // connections such as a STATS probe).
        let workers = if config.proxy_workers == 0 {
            (config.n_clients as usize + 4).max(crate::pool::DEFAULT_WORKERS)
        } else {
            config.proxy_workers
        };
        // The origin pool must scale alongside: each proxy worker may hold
        // a pooled keep-alive origin connection, and each of those occupies
        // an origin worker while open. A fixed-size origin pool deadlocks
        // fetches behind held-open connections once workers > pool size.
        let recorder = Arc::new(if config.recorder_capacity == 0 {
            FlightRecorder::default()
        } else {
            FlightRecorder::new(config.recorder_capacity)
        });
        let origin = OriginServer::start_with_recorder(
            store,
            workers,
            crate::pool::DEFAULT_BACKLOG,
            config.fault_plan.clone(),
            Some(Arc::clone(&recorder)),
        )?;
        let proxy = ProxyServer::start(ProxyConfig {
            cache_capacity: config.proxy_capacity,
            origin_addr: origin.addr(),
            key_seed: config.key_seed,
            cache_peer_hits: config.cache_peer_hits,
            direct_forward: config.direct_forward,
            io_mode: config.io_mode,
            reactor_loops: 0,
            worker_threads: workers,
            accept_backlog: config.proxy_backlog,
            peer_timeout: config.peer_timeout,
            peer_retries: config.peer_retries,
            origin_timeout: config.origin_timeout,
            origin_retries: config.origin_retries,
            disk: config.disk_root.clone().map(|root| DiskConfig {
                root,
                capacity: config.disk_capacity,
                default_ttl: config.disk_ttl,
            }),
            faults: config.fault_plan.clone(),
            recorder: Some(Arc::clone(&recorder)),
            slo: config.slo.clone(),
        })?;
        let key = proxy.public_key();
        let clients = (0..config.n_clients)
            .map(|id| {
                ClientAgent::start_with(
                    id,
                    proxy.addr(),
                    key,
                    ClientConfig {
                        browser_capacity: config.browser_capacity,
                        proxy_deadline: config.client_timeout,
                        retries: config.client_retries,
                        retry_backoff: Duration::from_millis(10),
                        faults: config.fault_plan.clone(),
                        recorder: Some(Arc::clone(&recorder)),
                    },
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TestBed {
            origin,
            proxy,
            clients,
            recorder,
        })
    }

    /// Restarts the proxy in place: stops it (persisting the disk tier's
    /// counter baseline), then brings it back on the *same* listening
    /// socket with the same configuration. With a disk tier configured the
    /// restarted proxy re-opens its store and comes back warm; clients'
    /// keep-alive connections die and transparently reconnect (replaying
    /// their REGISTER) on their next request.
    pub fn restart_proxy(&mut self) -> Result<(), ProxyError> {
        self.proxy.restart()?;
        Ok(())
    }

    /// Shuts every component down (clients first).
    pub fn shutdown(self) {
        for client in self.clients {
            client.shutdown();
        }
        self.proxy.shutdown();
        self.origin.shutdown();
    }
}
