//! The live browsers-aware proxy server.
//!
//! Request path (paper §2): proxy cache → browser index → origin. On an
//! index hit the proxy opens a `PEERGET` to the holding client's peer port,
//! mediating the exchange so requester and server browser never learn each
//! other's identity (§6.2). Every document first fetched from the origin is
//! stamped with a digital watermark signed by the proxy (§6.1); watermarks
//! travel with cached copies and are verified end to end.
//!
//! Observability (DESIGN.md §9): every verb is timed into a per-verb
//! latency histogram, every answered `GET` into a per-tier histogram, and
//! the interesting spans (shard wait, peer probes, origin fetches) land in
//! a shared [`FlightRecorder`] keyed by the client-minted `Trace-Id`. The
//! `METRICS BAPS/1.0` verb renders all of it as Prometheus text.

use crate::disk::{DiskConfig, DiskStats, DiskTier};
use crate::fault::{write_reply_with_fault, FaultKind, FaultPlan};
use crate::health::{HealthReport, ProxyWindows, SloTable};
use crate::pool::{
    dial_with_deadline, ConnRegistry, PoolTelemetry, SaturationSnapshot, WorkerPool,
    DEFAULT_BACKLOG, DEFAULT_WORKERS,
};
use crate::protocol::{
    read_message, response, response_code, status, write_message, Body, Message,
};
use crate::reactor::{Reactor, ReactorHandle, ReactorSnapshot, ReactorTelemetry};
use crate::shard::{auto_shards, ShardedCache, StripedIndex, DEFAULT_INDEX_SHARDS};
use crate::store::CachedDoc;
use baps_crypto::{AnonymizingProxy, PeerId, ProxySigner, PublicKey, Watermark};
use baps_obs::{
    span, EventKind, FlightRecorder, LabeledHistograms, SpanId, Tier, TraceId, TIER_NAMES,
};
use baps_trace::{ClientId, DocId, Interner};
use parking_lot::{Condvar, Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum peer candidates probed per request.
const MAX_PEER_PROBES: usize = 4;
/// Default dial/read timeout for peer probes, so one dead client cannot
/// stall the proxy.
const PEER_TIMEOUT: Duration = Duration::from_secs(2);
/// Default dial/read timeout for origin fetches.
const ORIGIN_TIMEOUT: Duration = Duration::from_secs(5);
/// Initial backoff between retried peer probes / origin fetches.
const RETRY_BACKOFF: Duration = Duration::from_millis(5);

/// How the proxy serves client connections (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoMode {
    /// The classic bounded worker pool: each open keep-alive connection
    /// occupies one thread. Simple, and the A/B baseline for the reactor.
    #[default]
    Threads,
    /// The epoll reactor: event loops multiplex every connection, idle
    /// connections cost one registered fd, and only blocking miss-path
    /// work (disk, peers, origin) runs on a small executor pool.
    Reactor,
}

impl IoMode {
    /// Stable lowercase name, as reported in the `Io-Mode` STATS header.
    pub fn name(self) -> &'static str {
        match self {
            IoMode::Threads => "threads",
            IoMode::Reactor => "reactor",
        }
    }
}

/// Proxy configuration.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Proxy cache capacity in bytes.
    pub cache_capacity: u64,
    /// Address of the origin server.
    pub origin_addr: SocketAddr,
    /// Seed for the proxy's signing key pair.
    pub key_seed: u64,
    /// Whether the proxy absorbs peer-served documents into its own cache
    /// (the paper's default is no; see `RemoteHitCaching`).
    pub cache_peer_hits: bool,
    /// Use the paper's *first* implementation alternative: on an index hit
    /// the proxy instructs the holder to push the document **directly** to
    /// the requester instead of relaying it through the proxy. Saves proxy
    /// bandwidth, but the holder learns the requester's transport address
    /// (the paper's companion anonymity protocols, HPL-2001-204, address
    /// that; the relayed mode keeps full mutual anonymity).
    pub direct_forward: bool,
    /// Connection-serving architecture. `Threads` (the default) keeps the
    /// bounded worker pool; `Reactor` serves every connection from epoll
    /// event loops and uses `worker_threads` to size the blocking miss
    /// executor instead.
    pub io_mode: IoMode,
    /// Event loops in `Reactor` mode; `0` sizes one per CPU core.
    pub reactor_loops: usize,
    /// Worker threads serving client connections. In `Threads` mode each
    /// keep-alive connection occupies a worker while open, so this bounds
    /// the number of concurrently connected clients (size it at
    /// `n_clients` plus headroom for one-shot administrative connections).
    /// In `Reactor` mode this sizes the blocking miss executor — the
    /// threads that run disk/peer/origin fetches — while connections
    /// themselves are unbounded-by-threads.
    pub worker_threads: usize,
    /// Bounded queue of accepted-but-unclaimed connections; when full,
    /// new connections are dropped (clients see EOF and may retry).
    pub accept_backlog: usize,
    /// Dial/read/write deadline for peer probes (`Duration::ZERO` falls
    /// back to the built-in default).
    pub peer_timeout: Duration,
    /// Extra attempts per peer probe after a *transport* failure. A peer
    /// that answers `410 Gone` is authoritative and never re-probed.
    pub peer_retries: u32,
    /// Dial/read/write deadline for origin fetches (`Duration::ZERO`
    /// falls back to the built-in default).
    pub origin_timeout: Duration,
    /// Extra origin fetch attempts after a transport failure or 5xx.
    pub origin_retries: u32,
    /// Optional persistent disk tier beneath the memory cache (DESIGN.md
    /// §10). A restarted proxy pointed at the same root comes back warm,
    /// and the monotonic Prometheus counters survive the restart via a
    /// baseline file in the same root. `None` keeps the cache memory-only
    /// (a restart starts cold, as before).
    pub disk: Option<DiskConfig>,
    /// Fault plan consulted once per client-facing `GET` (chaos testing).
    pub faults: Option<Arc<FaultPlan>>,
    /// Shared flight recorder. `None` gives the proxy a private ring; the
    /// test bed passes one ring shared with the origin and every client so
    /// a single dump interleaves all sides of a request.
    pub recorder: Option<Arc<FlightRecorder>>,
    /// Declarative SLO rules the `HEALTH BAPS/1.0` verb evaluates over
    /// the rolling telemetry windows (DESIGN.md §14).
    pub slo: SloTable,
}

impl ProxyConfig {
    fn peer_deadline(&self) -> Duration {
        if self.peer_timeout.is_zero() {
            PEER_TIMEOUT
        } else {
            self.peer_timeout
        }
    }

    fn origin_deadline(&self) -> Duration {
        if self.origin_timeout.is_zero() {
            ORIGIN_TIMEOUT
        } else {
            self.origin_timeout
        }
    }
}

/// Aggregate counters, readable while the proxy runs.
///
/// There is deliberately no `requests` counter: a request total incremented
/// separately from the outcome counters can be read mid-request, producing
/// snapshots where `requests != proxy_hits + disk_hits + peer_hits +
/// origin_fetches + errors`. [`ProxyCounters::snapshot`] instead *derives*
/// the total from the outcome counters, so the balance identity holds in
/// every snapshot by construction (each outcome counter is bumped exactly
/// once, when the request's fate is decided).
#[derive(Debug, Default)]
pub struct ProxyCounters {
    /// Served from the proxy's in-memory cache.
    pub proxy_hits: AtomicU64,
    /// Served from the proxy's disk tier (fresh or revalidated).
    pub disk_hits: AtomicU64,
    /// Disk-tier serves that required a `304 Not Modified` revalidation
    /// round trip first (a subset of `disk_hits`).
    pub disk_revalidations: AtomicU64,
    /// Served from a peer browser cache.
    pub peer_hits: AtomicU64,
    /// Fetched from the origin.
    pub origin_fetches: AtomicU64,
    /// INVALIDATE messages processed.
    pub invalidations: AtomicU64,
    /// Peer probes that failed (connection refused / GONE / bad reply).
    pub peer_failures: AtomicU64,
    /// Peer hits served by direct client-to-client pushes.
    pub direct_pushes: AtomicU64,
    /// Requests where the browser index offered candidates but every
    /// probe failed, so the request degraded to the origin path.
    pub peer_fallbacks: AtomicU64,
    /// GET requests answered with an error (404 or 5xx) instead of a
    /// document.
    pub errors: AtomicU64,
    /// Concurrent misses for the same document that were coalesced onto
    /// another request's in-flight fetch instead of fetching themselves
    /// (the thundering-herd guard). Followers are counted under
    /// `proxy_hits` (success) or `errors` (broadcast failure); this
    /// counter is the diagnostic overlay saying how many of those were
    /// coalesced.
    pub coalesced_fetches: AtomicU64,
}

impl ProxyCounters {
    /// A consistent snapshot: each outcome counter is read exactly once
    /// and the request total is derived from them, so
    /// `requests == proxy_hits + disk_hits + peer_hits + origin_fetches +
    /// errors` holds in the result even while workers are mid-flight.
    pub fn snapshot(&self) -> ProxyStats {
        let proxy_hits = self.proxy_hits.load(Ordering::Relaxed);
        let disk_hits = self.disk_hits.load(Ordering::Relaxed);
        let peer_hits = self.peer_hits.load(Ordering::Relaxed);
        let origin_fetches = self.origin_fetches.load(Ordering::Relaxed);
        let errors = self.errors.load(Ordering::Relaxed);
        ProxyStats {
            requests: proxy_hits + disk_hits + peer_hits + origin_fetches + errors,
            proxy_hits,
            disk_hits,
            disk_revalidations: self.disk_revalidations.load(Ordering::Relaxed),
            peer_hits,
            origin_fetches,
            invalidations: self.invalidations.load(Ordering::Relaxed),
            peer_failures: self.peer_failures.load(Ordering::Relaxed),
            direct_pushes: self.direct_pushes.load(Ordering::Relaxed),
            peer_fallbacks: self.peer_fallbacks.load(Ordering::Relaxed),
            errors,
            coalesced_fetches: self.coalesced_fetches.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of [`ProxyCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// GET requests completed (derived: the sum of the five outcome
    /// counters, so the balance identity holds in every snapshot).
    pub requests: u64,
    /// Served from the proxy's in-memory cache.
    pub proxy_hits: u64,
    /// Served from the proxy's disk tier (fresh or revalidated).
    pub disk_hits: u64,
    /// Disk serves that needed a `304 Not Modified` revalidation first
    /// (a subset of `disk_hits`).
    pub disk_revalidations: u64,
    /// Served from a peer browser cache.
    pub peer_hits: u64,
    /// Fetched from the origin.
    pub origin_fetches: u64,
    /// Eviction notices applied to the browser index. Counted only when
    /// the notice actually removed an entry, so a notice replayed by a
    /// reconnecting client (delivered, but the reply was lost) counts
    /// exactly once.
    pub invalidations: u64,
    /// Failed peer probes.
    pub peer_failures: u64,
    /// Peer hits served by direct client-to-client pushes.
    pub direct_pushes: u64,
    /// Requests that degraded from the peer path to the origin path.
    pub peer_fallbacks: u64,
    /// GET requests answered with an error instead of a document.
    pub errors: u64,
    /// Requests that coalesced onto another request's in-flight fetch (a
    /// diagnostic overlay on `proxy_hits`/`errors`, outside the balance
    /// identity).
    pub coalesced_fetches: u64,
}

impl ProxyStats {
    /// Field-wise sum with a persisted pre-restart baseline. Both addends
    /// satisfy the balance identity (each derives `requests` from its own
    /// outcome counters), so the sum does too — restart-surviving totals
    /// stay monotonic *and* balanced.
    pub fn offset_by(mut self, base: &ProxyStats) -> ProxyStats {
        self.requests += base.requests;
        self.proxy_hits += base.proxy_hits;
        self.disk_hits += base.disk_hits;
        self.disk_revalidations += base.disk_revalidations;
        self.peer_hits += base.peer_hits;
        self.origin_fetches += base.origin_fetches;
        self.invalidations += base.invalidations;
        self.peer_failures += base.peer_failures;
        self.direct_pushes += base.direct_pushes;
        self.peer_fallbacks += base.peer_fallbacks;
        self.errors += base.errors;
        self.coalesced_fetches += base.coalesced_fetches;
        self
    }
}

/// Shard-lock waits above this are worth a flight-recorder event even on
/// a cache hit; anything quicker is uncontended-fast-path noise.
const SLOW_SHARD_WAIT: Duration = Duration::from_micros(100);

/// Label set for the proxy's per-verb latency histograms.
pub(crate) const PROXY_VERBS: [&str; 8] = [
    "GET",
    "INVALIDATE",
    "REGISTER",
    "STATS",
    "METRICS",
    "TRACE",
    "HEALTH",
    "other",
];

/// Position of a request's first token in [`PROXY_VERBS`].
pub(crate) fn verb_index(verb: Option<&&str>) -> usize {
    match verb {
        Some(&"GET") => 0,
        Some(&"INVALIDATE") => 1,
        Some(&"REGISTER") => 2,
        Some(&"STATS") => 3,
        Some(&"METRICS") => 4,
        Some(&"TRACE") => 5,
        Some(&"HEALTH") => 6,
        _ => 7,
    }
}

/// The proxy's observability surfaces: tier + verb histograms and the
/// flight-recorder ring (possibly shared deployment-wide).
pub(crate) struct ProxyObs {
    pub(crate) recorder: Arc<FlightRecorder>,
    /// `baps_request_latency_ms{tier=…}`: answered GETs by serve tier.
    pub(crate) tiers: LabeledHistograms,
    /// `baps_verb_latency_ms{verb=…}`: every dispatched message.
    pub(crate) verbs: LabeledHistograms,
}

/// Shared proxy state. Lock discipline (see DESIGN.md): `cache` and
/// `index` are doc-sharded stripes (one lock per shard); `urls` and
/// `peers` are read-mostly RwLocks; `relay` and `origin_pool` are brief
/// bookkeeping mutexes. No lock is ever held across socket I/O, an origin
/// fetch, or a body copy, and no worker holds two locks at once.
pub(crate) struct ProxyState {
    pub(crate) cache: ShardedCache,
    pub(crate) index: StripedIndex,
    urls: RwLock<Interner>,
    peers: RwLock<HashMap<u32, SocketAddr>>,
    relay: Mutex<AnonymizingProxy>,
    signer: ProxySigner,
    pub(crate) counters: ProxyCounters,
    /// Counter totals carried over from previous incarnations of this
    /// proxy (loaded from the disk root at start). Folded into every
    /// snapshot so the monotonic `baps_*_total` series survive a restart.
    baseline: ProxyStats,
    pub(crate) config: ProxyConfig,
    pub(crate) obs: ProxyObs,
    /// The persistent disk tier, when configured.
    pub(crate) disk: Option<DiskTier>,
    /// Idle keep-alive connections to the origin, reused across fetches.
    origin_pool: Mutex<Vec<OriginConn>>,
    /// Worker-pool saturation telemetry (shared with the pool itself), so
    /// STATS/METRICS can report queue depth, busy workers, and
    /// time-in-queue without reaching into the acceptor thread.
    pub(crate) telemetry: Arc<PoolTelemetry>,
    /// Reactor-loop telemetry, present only in `IoMode::Reactor` (in that
    /// mode `telemetry` above describes the blocking miss executor).
    pub(crate) reactor: Option<Arc<ReactorTelemetry>>,
    /// Per-document in-flight miss registry (thundering-herd coalescing):
    /// the first miss for a doc becomes the leader and fetches; concurrent
    /// misses park on the entry's condvar and share the leader's outcome.
    /// The lock guards only the map — never the fetch itself.
    inflight: Mutex<HashMap<DocId, Arc<Inflight>>>,
    /// Rolling per-second telemetry windows (fed by the sampler thread
    /// and forced captures), the substrate of `HEALTH` SLO verdicts.
    pub(crate) windows: ProxyWindows,
}

impl ProxyState {
    /// Restart-surviving counter snapshot: the live counters plus the
    /// persisted baseline. The balance identity holds (see
    /// [`ProxyStats::offset_by`]).
    pub(crate) fn stats(&self) -> ProxyStats {
        self.counters.snapshot().offset_by(&self.baseline)
    }

    /// In-flight coalescing entries open right now (flight-registry
    /// occupancy). Nonzero under load means misses are actively sharing
    /// leaders; a stuck high value means leaders aren't finishing.
    pub(crate) fn inflight_occupancy(&self) -> usize {
        self.inflight.lock().len()
    }
}

/// The connection-serving engine behind the accept loop: the bounded
/// worker pool (`IoMode::Threads`) or the epoll reactor
/// (`IoMode::Reactor`). Both expose the same three operations the server
/// needs: hand over an accepted socket, expose connection control, and
/// shut down joining every thread.
enum ServeBackend {
    Threads(WorkerPool),
    Reactor(Reactor),
}

impl ServeBackend {
    fn dispatch(&self, stream: TcpStream) -> bool {
        match self {
            ServeBackend::Threads(pool) => pool.dispatch(stream),
            ServeBackend::Reactor(reactor) => reactor.dispatch(stream),
        }
    }

    fn conn_control(&self) -> ConnControl {
        match self {
            ServeBackend::Threads(pool) => ConnControl::Threads(Arc::clone(pool.registry())),
            ServeBackend::Reactor(reactor) => ConnControl::Reactor(reactor.handle()),
        }
    }

    fn shutdown(self) {
        match self {
            ServeBackend::Threads(pool) => pool.shutdown(),
            ServeBackend::Reactor(reactor) => reactor.shutdown(),
        }
    }
}

/// Mode-specific handle for the connection-control surface
/// (`open_connections` / `drop_connections`), kept on [`ProxyServer`]
/// because the backend itself moves into the acceptor thread. Thread mode
/// goes through the pool's [`ConnRegistry`] (which holds a duplicate fd per
/// connection so any thread can sever it); reactor mode asks the loops,
/// which own their sockets outright — one fd per connection, which is what
/// lets a 10k-idle-connection ladder fit in an ordinary fd table.
enum ConnControl {
    Threads(Arc<ConnRegistry>),
    Reactor(ReactorHandle),
}

impl ConnControl {
    fn open_connections(&self) -> usize {
        match self {
            ConnControl::Threads(registry) => registry.open_connections(),
            ConnControl::Reactor(handle) => handle.open_connections(),
        }
    }

    fn drop_all(&self) {
        match self {
            ConnControl::Threads(registry) => registry.drop_all(),
            ConnControl::Reactor(handle) => handle.drop_all(),
        }
    }
}

/// A running browsers-aware proxy.
pub struct ProxyServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// The acceptor thread; it owns the serving backend (worker pool or
    /// reactor) and hands it back on exit so `stop` can join the threads.
    handle: Option<JoinHandle<ServeBackend>>,
    /// The 1 Hz window sampler thread feeding `state.windows`.
    sampler: Option<JoinHandle<()>>,
    conns: ConnControl,
    state: Arc<ProxyState>,
    /// The bound listening socket. The acceptor thread runs on a clone;
    /// keeping the original here lets [`ProxyServer::restart`] hand the
    /// same bound port to the next incarnation (no rebind, no
    /// address-in-use race — connections arriving during the gap queue in
    /// the kernel backlog).
    listener: TcpListener,
}

impl ProxyServer {
    /// Starts the proxy on an ephemeral loopback port.
    pub fn start(config: ProxyConfig) -> io::Result<ProxyServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        ProxyServer::start_on(listener, config)
    }

    /// Starts the proxy on an already-bound listener (the restart path
    /// reuses the previous incarnation's socket).
    fn start_on(listener: TcpListener, config: ProxyConfig) -> io::Result<ProxyServer> {
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(config.key_seed));
        let workers = if config.worker_threads == 0 {
            DEFAULT_WORKERS
        } else {
            config.worker_threads
        };
        let backlog = if config.accept_backlog == 0 {
            DEFAULT_BACKLOG
        } else {
            config.accept_backlog
        };
        let recorder = config
            .recorder
            .clone()
            .unwrap_or_else(|| Arc::new(FlightRecorder::default()));
        // Re-open the persistent tier (warm after a restart) and the
        // counter baseline that lives beside it.
        let disk = match &config.disk {
            Some(disk_config) => Some(DiskTier::open(disk_config.clone(), signer.public_key())?),
            None => None,
        };
        let baseline = disk
            .as_ref()
            .map(|d| load_baseline(d.root()))
            .unwrap_or_default();
        let telemetry = Arc::new(PoolTelemetry::new());
        let reactor_telemetry = match config.io_mode {
            IoMode::Reactor => Some(Arc::new(ReactorTelemetry::new())),
            IoMode::Threads => None,
        };
        let io_mode = config.io_mode;
        let reactor_loops = if config.reactor_loops == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.reactor_loops
        };
        let state = Arc::new(ProxyState {
            cache: ShardedCache::new(config.cache_capacity, auto_shards(config.cache_capacity)),
            index: StripedIndex::new(DEFAULT_INDEX_SHARDS),
            urls: RwLock::new(Interner::new()),
            peers: RwLock::new(HashMap::new()),
            relay: Mutex::new(AnonymizingProxy::new()),
            signer,
            counters: ProxyCounters::default(),
            baseline,
            config,
            obs: ProxyObs {
                recorder,
                tiers: LabeledHistograms::new(&TIER_NAMES),
                verbs: LabeledHistograms::new(&PROXY_VERBS),
            },
            disk,
            origin_pool: Mutex::new(Vec::new()),
            telemetry: Arc::clone(&telemetry),
            reactor: reactor_telemetry.clone(),
            inflight: Mutex::new(HashMap::new()),
            windows: ProxyWindows::new(),
        });
        // Zero-point capture: the first window differences against the
        // counters as they stood at start (the restart baseline included),
        // so windows measure activity of *this* incarnation only.
        state.windows.force_capture(&state);
        let sampler = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("baps-proxy-windows".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        state.windows.maybe_capture(&state);
                        std::thread::park_timeout(Duration::from_millis(50));
                    }
                })?
        };
        let backend = match io_mode {
            IoMode::Threads => {
                let state = Arc::clone(&state);
                ServeBackend::Threads(WorkerPool::start_with(
                    "baps-proxy-worker",
                    workers,
                    backlog,
                    telemetry,
                    move |stream, queue_wait| {
                        let _ = serve_connection(stream, queue_wait, &state);
                    },
                )?)
            }
            IoMode::Reactor => ServeBackend::Reactor(Reactor::start(
                "baps-proxy",
                reactor_loops,
                workers,
                Arc::clone(&state),
                telemetry,
                reactor_telemetry.expect("reactor telemetry exists in reactor mode"),
            )?),
        };
        let conns = backend.conn_control();
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let acceptor = listener.try_clone()?;
            std::thread::Builder::new()
                .name("baps-proxy".into())
                .spawn(move || {
                    for conn in acceptor.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        // Threads mode: bounded dispatch — under a
                        // connection flood the excess connections are
                        // dropped, not threaded. Reactor mode: the loop
                        // registers the fd; idle connections are cheap.
                        backend.dispatch(stream);
                    }
                    backend
                })?
        };
        Ok(ProxyServer {
            addr,
            shutdown,
            handle: Some(handle),
            sampler: Some(sampler),
            conns,
            state,
            listener,
        })
    }

    /// Warm restart: stops this incarnation completely (connections
    /// severed, workers joined, counter baseline persisted beside the
    /// disk tier), then starts a fresh one **on the same bound socket**
    /// with the same configuration. With a disk tier configured the new
    /// incarnation re-opens the store and serves the persisted documents
    /// immediately — a restart degrades to disk latency instead of a full
    /// cache loss. Keep-alive clients see EOF and reconnect as they
    /// already do for dropped connections.
    pub fn restart(&mut self) -> io::Result<()> {
        let config = self.state.config.clone();
        self.stop();
        let listener = self.listener.try_clone()?;
        *self = ProxyServer::start_on(listener, config)?;
        Ok(())
    }

    /// The address clients should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The public key clients use to verify watermarks.
    pub fn public_key(&self) -> PublicKey {
        self.state.signer.public_key()
    }

    /// Counter snapshot, including totals carried over from previous
    /// incarnations when a disk tier is configured. The balance identity
    /// `requests == proxy_hits + disk_hits + peer_hits + origin_fetches +
    /// errors` holds in every snapshot, even taken mid-load (see
    /// [`ProxyCounters::snapshot`] and [`ProxyStats::offset_by`]).
    pub fn stats(&self) -> ProxyStats {
        self.state.stats()
    }

    /// Disk-tier counter/occupancy snapshot (`None` when the proxy runs
    /// memory-only).
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.state.disk.as_ref().map(DiskTier::stats)
    }

    /// The flight recorder this proxy records into (shared with the whole
    /// deployment when the config provided one).
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.state.obs.recorder)
    }

    /// The Prometheus exposition the `METRICS BAPS/1.0` verb serves,
    /// rendered directly (test/ops hook — no connection needed).
    pub fn metrics_text(&self) -> String {
        crate::metrics::render(&self.state)
    }

    /// Per-tier latency snapshot (`Tier::index` selects the series).
    pub fn tier_latency(&self, tier: Tier) -> baps_obs::LatencyHistogram {
        self.state.obs.tiers.snapshot(tier.index())
    }

    /// Test/diagnostic hook: whether the browser index currently lists
    /// `client` as a holder of `url`.
    pub fn index_holds(&self, client: u32, url: &str) -> bool {
        let doc = doc_id(&self.state, url);
        // `lookup_all` excludes the requester, so ask as nobody.
        self.state
            .index
            .lookup_all(doc, ClientId(u32::MAX))
            .iter()
            .any(|holder| holder.0 == client)
    }

    /// Current browser-index entry count (summed across shards).
    pub fn index_entries(&self) -> u64 {
        self.state.index.entries()
    }

    /// Test hook: a shared handle to the proxy-cached body for `url`, if
    /// cached. Two calls return the *same* allocation (`Arc::ptr_eq`),
    /// proving a cache hit is a refcount bump, not a copy.
    pub fn cached_body(&self, url: &str) -> Option<Body> {
        let doc = doc_id(&self.state, url);
        self.state.cache.get(doc, url).map(|d| d.body)
    }

    /// Client connections currently held open (by workers in thread mode,
    /// registered with the event loops in reactor mode).
    pub fn open_connections(&self) -> usize {
        self.conns.open_connections()
    }

    /// Runtime-saturation snapshot of the worker pool: configured workers,
    /// accept-backlog depth (current and peak), busy workers (current and
    /// peak), rejected connections, and the time-in-queue histogram. In
    /// `IoMode::Reactor` the same gauges describe the blocking miss
    /// executor (its queue is the offload channel, not the accept backlog).
    pub fn saturation(&self) -> SaturationSnapshot {
        self.state.telemetry.snapshot()
    }

    /// The configured connection-serving mode.
    pub fn io_mode(&self) -> IoMode {
        self.state.config.io_mode
    }

    /// Reactor-loop telemetry snapshot: registered fds (current and peak),
    /// ready-batch depth, loop busy-fraction, inline vs offloaded
    /// dispatches. `None` in `IoMode::Threads`.
    pub fn reactor_stats(&self) -> Option<ReactorSnapshot> {
        self.state.reactor.as_ref().map(|r| r.snapshot())
    }

    /// Entries currently in the in-flight miss registry (thundering-herd
    /// coalescing flights open right now).
    pub fn flight_occupancy(&self) -> usize {
        self.state.inflight.lock().len()
    }

    /// The causal-trace span dump the `TRACE BAPS/1.0` verb serves,
    /// rendered directly (test/ops hook — no connection needed).
    pub fn trace_spans(&self) -> String {
        self.state.obs.recorder.dump_spans()
    }

    /// The SLO verdict the `HEALTH BAPS/1.0` verb serves, evaluated
    /// directly (test/ops hook — no connection needed). Forces a window
    /// capture first, exactly as the wire verb does.
    pub fn health(&self) -> HealthReport {
        self.state.windows.force_capture(&self.state);
        crate::health::evaluate(&self.state)
    }

    /// Test hook: forces one window capture *now*, advancing the capture
    /// tick by at least one second even if the wall clock has not moved.
    /// Deterministic tests bracket a burst with two calls and difference
    /// the resulting windows.
    pub fn sample_windows_now(&self) {
        self.state.windows.force_capture(&self.state);
    }

    /// Seconds since this proxy incarnation started (the
    /// `baps_uptime_seconds` gauge).
    pub fn uptime_secs(&self) -> u64 {
        self.state.windows.uptime_secs()
    }

    /// Ops/test hook: abruptly severs every open client connection (and
    /// discards pooled origin connections) without stopping the server.
    /// Keep-alive clients observe EOF mid-session and must reconnect.
    pub fn drop_connections(&self) {
        self.conns.drop_all();
        self.state.origin_pool.lock().clear();
    }

    /// Stops the accept loop, severs open connections, and joins the
    /// acceptor and worker threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock the acceptor; it checks the flag and returns the backend.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            if let Ok(backend) = handle.join() {
                // Closes every open connection so looping handlers (or
                // event loops) exit, then joins the threads.
                backend.shutdown();
            }
        }
        if let Some(sampler) = self.sampler.take() {
            sampler.thread().unpark();
            let _ = sampler.join();
        }
        self.state.origin_pool.lock().clear();
        // Persist the cumulative counters beside the disk tier so the
        // next incarnation's `baps_*_total` series continue monotonically
        // instead of resetting to zero. Written after the workers have
        // joined, so the totals are final. (A crash skips this — the
        // series then resume from the last graceful stop, still
        // monotonic, merely missing the unpersisted tail.)
        if let Some(disk) = &self.state.disk {
            persist_baseline(disk.root(), &self.state.stats());
        }
    }
}

impl Drop for ProxyServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// File beside the disk tier holding the cumulative counter totals of
/// previous proxy incarnations (plain `key=value` lines).
const BASELINE_FILE: &str = "counters.baseline";

/// Writes the cumulative counters as `key=value` lines. `requests` is not
/// written — it is derived on load, preserving the balance identity.
fn persist_baseline(root: &std::path::Path, s: &ProxyStats) {
    let text = format!(
        "proxy_hits={}\ndisk_hits={}\ndisk_revalidations={}\npeer_hits={}\n\
         origin_fetches={}\ninvalidations={}\npeer_failures={}\n\
         direct_pushes={}\npeer_fallbacks={}\nerrors={}\ncoalesced_fetches={}\n",
        s.proxy_hits,
        s.disk_hits,
        s.disk_revalidations,
        s.peer_hits,
        s.origin_fetches,
        s.invalidations,
        s.peer_failures,
        s.direct_pushes,
        s.peer_fallbacks,
        s.errors,
        s.coalesced_fetches,
    );
    let _ = std::fs::write(root.join(BASELINE_FILE), text);
}

/// Loads the persisted counter baseline; unknown keys are skipped and a
/// missing or garbled file yields zeros, so a corrupt baseline degrades
/// to a counter reset, never a failed start.
fn load_baseline(root: &std::path::Path) -> ProxyStats {
    let mut s = ProxyStats::default();
    if let Ok(text) = std::fs::read_to_string(root.join(BASELINE_FILE)) {
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let Ok(value) = value.trim().parse::<u64>() else {
                continue;
            };
            match key.trim() {
                "proxy_hits" => s.proxy_hits = value,
                "disk_hits" => s.disk_hits = value,
                "disk_revalidations" => s.disk_revalidations = value,
                "peer_hits" => s.peer_hits = value,
                "origin_fetches" => s.origin_fetches = value,
                "invalidations" => s.invalidations = value,
                "peer_failures" => s.peer_failures = value,
                "direct_pushes" => s.direct_pushes = value,
                "peer_fallbacks" => s.peer_fallbacks = value,
                "errors" => s.errors = value,
                "coalesced_fetches" => s.coalesced_fetches = value,
                _ => {}
            }
        }
    }
    s.requests = s.proxy_hits + s.disk_hits + s.peer_hits + s.origin_fetches + s.errors;
    s
}

fn serve_connection(stream: TcpStream, queue_wait: Duration, state: &ProxyState) -> io::Result<()> {
    let peer_ip = stream.peer_addr()?.ip();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // The accept-backlog wait is attributed to this connection's first
    // *sampled* request: under thread-per-connection only the first
    // request ever waited in the backlog, and an unsampled trace carries
    // no span tree to attach it to (the histogram still counts it).
    let mut queue_wait = Some(queue_wait);
    while let Some(msg) = read_message(&mut reader)? {
        // One proxy-site fault decision per client-facing GET. The
        // administrative verbs (REGISTER, INVALIDATE, STATS) stay honest
        // so chaos runs can still register clients and read counters.
        let fault = match (msg.tokens().first(), state.config.faults.as_deref()) {
            (Some(&"GET"), Some(plan)) => plan.proxy_fault(),
            _ => None,
        };
        if fault == Some(FaultKind::ProxyDrop) {
            // Sever before handling: the client sees EOF, redials, and
            // replays; the request is never counted.
            return Ok(());
        }
        let t_verb = Instant::now();
        let reply = dispatch(&msg, peer_ip, &mut queue_wait, state);
        state
            .obs
            .verbs
            .record(verb_index(msg.tokens().first()), t_verb.elapsed());
        if let Some(reply) = reply {
            let stall = state
                .config
                .faults
                .as_deref()
                .map(FaultPlan::stall)
                .unwrap_or_default();
            if !write_reply_with_fault(&mut writer, &reply, fault, stall)? {
                return Ok(());
            }
        }
    }
    Ok(())
}

/// Whether this request can block the thread that runs it (disk reads,
/// peer probes with retry backoff, origin fetches, coalesced followers
/// parking on a condvar) — i.e. whether the reactor must hand it to the
/// blocking miss executor instead of running it inline on an event loop.
/// Only a `GET` that misses the memory cache qualifies; every admin verb
/// and every memory hit answers from local state. The probe uses
/// `ShardedCache::contains` (no LRU promotion, no hit/miss counters), so
/// the real `cache.get` in `handle_get` keeps identical stats in both I/O
/// modes. The probe can race an eviction — `contains` true, then the real
/// `get` misses — in which case the loop rarely runs one miss inline;
/// correctness is unaffected (DESIGN.md §13 discusses the trade).
pub(crate) fn needs_miss_executor(msg: &Message, state: &ProxyState) -> bool {
    match msg.tokens().as_slice() {
        ["GET", url, "BAPS/1.0"] => {
            let doc = doc_id(state, url);
            !state.cache.contains(doc, url)
        }
        _ => false,
    }
}

pub(crate) fn dispatch(
    msg: &Message,
    peer_ip: std::net::IpAddr,
    queue_wait: &mut Option<Duration>,
    state: &ProxyState,
) -> Option<Message> {
    // The client mints a trace id per logical fetch and stamps every hop;
    // administrative verbs and legacy clients simply have none. For
    // head-sampled traces the `Span-Id` header carries the upstream span
    // every proxy-side span of this request attaches to.
    let trace = msg
        .get("Trace-Id")
        .and_then(|h| h.parse().ok())
        .unwrap_or(TraceId::NONE);
    let parent = msg
        .get("Span-Id")
        .and_then(|h| h.parse().ok())
        .unwrap_or(SpanId::NONE);
    if span::sampled(trace) {
        if let Some(wait) = queue_wait.take() {
            state.obs.recorder.record_span(
                trace,
                SpanId::mint(),
                parent,
                EventKind::QueueWait,
                wait,
                "queue=accept-backlog",
            );
        }
    }
    match msg.tokens().as_slice() {
        ["GET", url, "BAPS/1.0"] => {
            let client: u32 = msg.get("Client")?.parse().ok()?;
            // Piggybacked eviction notices (processed before the GET so a
            // re-fetch of a just-evicted document is ordered correctly).
            if let Some(evicted) = msg.get("Evicted") {
                for victim in evicted.split(' ').filter(|u| !u.is_empty()) {
                    handle_invalidate(victim, client, trace, state);
                }
            }
            let bypass = msg.get("Bypass-Peers").is_some();
            Some(handle_get(url, client, bypass, trace, parent, state))
        }
        ["INVALIDATE", url, "BAPS/1.0"] => {
            let client: u32 = msg.get("Client")?.parse().ok()?;
            // `Purge: 1` marks a *publisher* invalidation: the document
            // changed at the origin, so the proxy's own replicas must go
            // too, not just the sender's index entry.
            if msg.get("Purge").is_some() {
                handle_purge(url, trace, state);
            }
            handle_invalidate(url, client, trace, state);
            Some(response(status::OK, "OK"))
        }
        ["REGISTER", port, "BAPS/1.0"] => {
            let client: u32 = msg.get("Client")?.parse().ok()?;
            let port: u16 = port.parse().ok()?;
            state
                .peers
                .write()
                .insert(client, SocketAddr::new(peer_ip, port));
            Some(response(status::OK, "OK"))
        }
        ["STATS", "BAPS/1.0"] => Some(stats_response(state)),
        ["TRACE", "BAPS/1.0"] => {
            let body = state.obs.recorder.dump_spans();
            Some(
                response(status::OK, "OK")
                    .header("Content-Type", "application/jsonl")
                    .header("Sample-One-In", span::SAMPLE_ONE_IN.to_string())
                    .with_body(body.into_bytes()),
            )
        }
        ["METRICS", "BAPS/1.0"] => {
            let text = crate::metrics::render(state);
            Some(
                response(status::OK, "OK")
                    .header("Content-Type", "text/plain; version=0.0.4")
                    .with_body(text.into_bytes()),
            )
        }
        // Like the other read-only admin verbs this runs inline on an
        // event loop in reactor mode (`needs_miss_executor` is false), so
        // both I/O modes answer through the identical code path.
        ["HEALTH", "BAPS/1.0"] => {
            state.windows.force_capture(state);
            let report = crate::health::evaluate(state);
            Some(
                response(status::OK, "OK")
                    .header("Content-Type", "text/plain")
                    .header("Verdict", report.verdict.name())
                    .header("Rules", report.rules.len().to_string())
                    .header("Uptime-Seconds", report.uptime_secs.to_string())
                    .header("Io-Mode", state.config.io_mode.name())
                    .with_body(report.render().into_bytes()),
            )
        }
        _ => Some(response(status::BAD_REQUEST, "Bad Request")),
    }
}

/// Mints a span id for one proxy-side hop of a head-sampled trace
/// ([`SpanId::NONE`] otherwise). The id is minted *before* the hop runs so
/// outbound wire messages (PEERGET/PUSH/origin GET) can carry it in their
/// `Span-Id` header — the downstream hop's spans then attach under it.
fn hop_span(trace: TraceId) -> SpanId {
    span::hop(trace)
}

/// Records one hop into the proxy's recorder: as a causal span (under
/// `parent`) when `span` was minted, as a legacy plain event otherwise.
fn record_hop(
    state: &ProxyState,
    trace: TraceId,
    span: SpanId,
    parent: SpanId,
    kind: EventKind,
    dur: Duration,
    detail: impl Into<String>,
) {
    state
        .obs
        .recorder
        .record_hop(trace, span, parent, kind, dur, detail);
}

/// Interns `url`, taking only the shared read lock on the steady-state
/// path (every URL after its first sighting). The read→write upgrade race
/// is benign: `intern` is idempotent, so two writers agree on the id.
pub(crate) fn doc_id(state: &ProxyState, url: &str) -> DocId {
    if let Some(id) = state.urls.read().get(url) {
        return DocId(id);
    }
    DocId(state.urls.write().intern(url))
}

fn handle_get(
    url: &str,
    client: u32,
    bypass_peers: bool,
    trace: TraceId,
    parent: SpanId,
    state: &ProxyState,
) -> Message {
    let t_request = Instant::now();
    let doc = doc_id(state, url);
    let requester = ClientId(client);

    // 1. Proxy cache. The hit hands back a shared body handle — the shard
    // lock is held only for the map lookup, never while the reply frame is
    // written.
    let t_shard = Instant::now();
    let cached = state.cache.get(doc, url);
    let shard_wait = t_shard.elapsed();
    // Fast cache hits are the hot path (tens of thousands per second, all
    // identical); a ring event for each would be pure overhead with no
    // diagnostic value. Record the span only when it says something — a
    // miss (the request is about to leave the fast path), a slow lock
    // acquisition (shard contention, the thing this span exists to show),
    // or a head-sampled trace (whose tree must be complete).
    let sampled = span::sampled(trace);
    if sampled || cached.is_none() || shard_wait > SLOW_SHARD_WAIT {
        record_hop(
            state,
            trace,
            hop_span(trace),
            parent,
            EventKind::WaitForShard,
            shard_wait,
            if cached.is_some() {
                "cache=hit"
            } else {
                "cache=miss"
            },
        );
    }
    if let Some(cached) = cached {
        state.counters.proxy_hits.fetch_add(1, Ordering::Relaxed);
        // The client will cache what we send it (it invalidates on evict).
        state.index.on_store(requester, doc);
        state
            .obs
            .tiers
            .record_traced(Tier::Proxy.index(), t_request.elapsed(), trace);
        return ok_response("proxy", &cached);
    }

    // 1c. Thundering-herd coalescing (singleflight). The first miss for a
    // doc becomes the *leader* and runs the full miss path; concurrent
    // misses for the same doc park on the flight's condvar and share the
    // leader's outcome — one backend fetch per herd, not one per waiter.
    // The no-lock-across-I/O rule holds: the registry mutex is held only
    // for the map operation, and the leader fetches holding no lock.
    let wait_budget = state.config.origin_deadline() + state.config.peer_deadline();
    let mut attempt = 0usize;
    loop {
        attempt += 1;
        match join_inflight(state, doc) {
            FlightRole::Leader(entry) => {
                let leader = FlightLeader {
                    state,
                    doc,
                    entry,
                    published: false,
                };
                let (reply, outcome) = handle_miss(
                    url,
                    client,
                    bypass_peers,
                    trace,
                    parent,
                    state,
                    doc,
                    requester,
                    t_request,
                );
                leader.publish(outcome);
                return reply;
            }
            FlightRole::Follower(entry) => {
                let t_wait = Instant::now();
                let outcome = if attempt < MAX_FLIGHT_JOINS {
                    entry.wait(wait_budget)
                } else {
                    FlightOutcome::Unshared
                };
                match outcome {
                    FlightOutcome::Doc(cached) => {
                        state
                            .counters
                            .coalesced_fetches
                            .fetch_add(1, Ordering::Relaxed);
                        state.counters.proxy_hits.fetch_add(1, Ordering::Relaxed);
                        state.index.on_store(requester, doc);
                        record_hop(
                            state,
                            trace,
                            hop_span(trace),
                            parent,
                            EventKind::Coalesced,
                            t_wait.elapsed(),
                            format!("url={url} outcome=ok"),
                        );
                        state.obs.tiers.record_traced(
                            Tier::Proxy.index(),
                            t_request.elapsed(),
                            trace,
                        );
                        return ok_response("proxy", &cached);
                    }
                    FlightOutcome::Error(code, reason) => {
                        // The leader's failure is broadcast: every waiter
                        // fails the same way instead of dogpiling a dead
                        // origin — and instead of hanging.
                        state
                            .counters
                            .coalesced_fetches
                            .fetch_add(1, Ordering::Relaxed);
                        state.counters.errors.fetch_add(1, Ordering::Relaxed);
                        record_hop(
                            state,
                            trace,
                            hop_span(trace),
                            parent,
                            EventKind::Coalesced,
                            t_wait.elapsed(),
                            format!("url={url} outcome=err code={code}"),
                        );
                        return response(code, &reason);
                    }
                    FlightOutcome::Unshared => {
                        // The flight ended without a shareable outcome (a
                        // direct push carries no body; an unwound leader
                        // publishes this from Drop; or the wait budget ran
                        // out). The doc may have landed in memory in the
                        // meantime; otherwise retry, degrading to an
                        // uncoalesced miss after MAX_FLIGHT_JOINS rounds
                        // so no request loops forever.
                        if let Some(cached) = state.cache.get(doc, url) {
                            state.counters.proxy_hits.fetch_add(1, Ordering::Relaxed);
                            state.index.on_store(requester, doc);
                            state.obs.tiers.record_traced(
                                Tier::Proxy.index(),
                                t_request.elapsed(),
                                trace,
                            );
                            return ok_response("proxy", &cached);
                        }
                        if attempt >= MAX_FLIGHT_JOINS {
                            let (reply, _) = handle_miss(
                                url,
                                client,
                                bypass_peers,
                                trace,
                                parent,
                                state,
                                doc,
                                requester,
                                t_request,
                            );
                            return reply;
                        }
                    }
                }
            }
        }
    }
}

/// Rounds through the in-flight registry a request makes before giving up
/// on coalescing and fetching for itself (guards against pathological
/// chains of unshareable outcomes).
const MAX_FLIGHT_JOINS: usize = 3;

/// How a request relates to the in-flight registry entry for its doc.
enum FlightRole {
    /// This request created the entry: it must fetch, then publish.
    Leader(Arc<Inflight>),
    /// Another request is already fetching this doc: park and share.
    Follower(Arc<Inflight>),
}

/// One in-flight miss: the slot the leader fills and the condvar the
/// followers park on.
struct Inflight {
    slot: Mutex<Option<FlightOutcome>>,
    cv: Condvar,
}

impl Inflight {
    /// Parks until the leader publishes or `budget` elapses.
    fn wait(&self, budget: Duration) -> FlightOutcome {
        let start = Instant::now();
        let mut slot = self.slot.lock();
        loop {
            if let Some(outcome) = slot.as_ref() {
                return outcome.clone();
            }
            let Some(remaining) = budget.checked_sub(start.elapsed()) else {
                // The leader overran every backend deadline combined; stop
                // trusting it and fend for ourselves.
                return FlightOutcome::Unshared;
            };
            self.cv.wait_for(&mut slot, remaining);
        }
    }
}

/// What a coalescing leader hands its followers.
#[derive(Clone)]
enum FlightOutcome {
    /// The miss produced a verified document; followers share the body
    /// (`Body` is `Arc<[u8]>`, so each waiter costs a refcount bump, not
    /// a copy).
    Doc(CachedDoc),
    /// The miss failed with this status/reason; followers fail the same
    /// way.
    Error(u16, String),
    /// The outcome cannot be shared; followers rerun the miss path.
    Unshared,
}

/// Joins (or creates) the in-flight entry for `doc`.
fn join_inflight(state: &ProxyState, doc: DocId) -> FlightRole {
    use std::collections::hash_map::Entry;
    let mut registry = state.inflight.lock();
    match registry.entry(doc) {
        Entry::Occupied(e) => FlightRole::Follower(Arc::clone(e.get())),
        Entry::Vacant(v) => {
            let entry = Arc::new(Inflight {
                slot: Mutex::new(None),
                cv: Condvar::new(),
            });
            v.insert(Arc::clone(&entry));
            FlightRole::Leader(entry)
        }
    }
}

/// Leader-side handle: guarantees the registry entry is removed and the
/// followers woken exactly once, even if the miss path unwinds.
struct FlightLeader<'a> {
    state: &'a ProxyState,
    doc: DocId,
    entry: Arc<Inflight>,
    published: bool,
}

impl FlightLeader<'_> {
    fn publish(mut self, outcome: FlightOutcome) {
        self.finish(outcome);
        self.published = true;
    }

    fn finish(&self, outcome: FlightOutcome) {
        // Deregister first so a request arriving after the outcome was
        // decided starts a fresh flight instead of joining a finished one.
        self.state.inflight.lock().remove(&self.doc);
        *self.entry.slot.lock() = Some(outcome);
        self.entry.cv.notify_all();
    }
}

impl Drop for FlightLeader<'_> {
    fn drop(&mut self) {
        if !self.published {
            // The miss path unwound: release the followers rather than
            // stranding them until their wait budget expires.
            self.finish(FlightOutcome::Unshared);
        }
    }
}

/// The full miss path (disk → peers → origin), shared by coalescing
/// leaders and by followers that gave up on coalescing. Returns the reply
/// plus the outcome a leader broadcasts to its followers.
#[allow(clippy::too_many_arguments)]
fn handle_miss(
    url: &str,
    client: u32,
    bypass_peers: bool,
    trace: TraceId,
    parent: SpanId,
    state: &ProxyState,
    doc: DocId,
    requester: ClientId,
    t_request: Instant,
) -> (Message, FlightOutcome) {
    // 1b. Disk tier — consulted only after a memory miss, so the
    // in-memory hot path never touches it. A fresh verified entry serves
    // directly; a stale one is revalidated against the origin with a
    // conditional GET; a torn or corrupted file already self-healed
    // inside `load` and reads as a miss.
    if let Some(disk) = &state.disk {
        let t_disk = Instant::now();
        let hit = disk.load(url);
        record_hop(
            state,
            trace,
            hop_span(trace),
            parent,
            EventKind::DiskRead,
            t_disk.elapsed(),
            format!(
                "url={url} outcome={}",
                match &hit {
                    Some(h) if h.fresh => "fresh",
                    Some(_) => "stale",
                    None => "miss",
                }
            ),
        );
        if let Some(hit) = hit {
            if hit.fresh {
                let outcome = FlightOutcome::Doc(hit.doc.clone());
                return (
                    serve_from_disk(state, requester, doc, url, hit.doc, false, trace, t_request),
                    outcome,
                );
            }
            // TTL expired: ask the origin whether our copy is still
            // current before serving it.
            let reval_span = hop_span(trace);
            let t_reval = Instant::now();
            let outcome = revalidate_with_origin(state, url, &hit.digest_hex, trace, reval_span);
            record_hop(
                state,
                trace,
                reval_span,
                parent,
                EventKind::OriginFetch,
                t_reval.elapsed(),
                format!(
                    "url={url} outcome={}",
                    match &outcome {
                        Revalidation::NotModified => "not-modified",
                        Revalidation::Changed(_) => "changed",
                        Revalidation::Gone => "gone",
                        Revalidation::Failed => "err",
                    }
                ),
            );
            match outcome {
                Revalidation::NotModified => {
                    disk.refresh(url);
                    let outcome = FlightOutcome::Doc(hit.doc.clone());
                    return (
                        serve_from_disk(
                            state, requester, doc, url, hit.doc, true, trace, t_request,
                        ),
                        outcome,
                    );
                }
                Revalidation::Changed(body) => {
                    // The document changed at the origin: this is an
                    // origin fetch in every respect, write-through
                    // included.
                    let (reply, cached) =
                        serve_origin_fetch(state, requester, doc, url, body, trace, t_request);
                    return (reply, FlightOutcome::Doc(cached));
                }
                Revalidation::Gone => {
                    // The origin no longer serves the document; the
                    // stale disk copy must not outlive it.
                    disk.remove(url);
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    return (
                        response(status::NOT_FOUND, "Not Found"),
                        FlightOutcome::Error(status::NOT_FOUND, "Not Found".into()),
                    );
                }
                Revalidation::Failed => {
                    // Origin unreachable: keep the stale entry (a later
                    // revalidation may still rescue it) and degrade to
                    // the peer path below.
                }
            }
        }
    }

    // 2. Browser index -> peer browser caches.
    let mut probed_peers = false;
    if !bypass_peers {
        let candidates = state.index.lookup_all(doc, requester);
        for peer in candidates.into_iter().take(MAX_PEER_PROBES) {
            probed_peers = true;
            if state.config.direct_forward {
                let push_span = hop_span(trace);
                let t_push = Instant::now();
                let pushed = order_direct_push(state, PeerId(client), peer, url, trace, push_span);
                record_hop(
                    state,
                    trace,
                    push_span,
                    parent,
                    EventKind::PushOrder,
                    t_push.elapsed(),
                    format!(
                        "peer={} url={url} outcome={}",
                        peer.0,
                        if pushed.is_ok() { "ok" } else { "err" }
                    ),
                );
                match pushed {
                    Ok(txn) => {
                        state.counters.peer_hits.fetch_add(1, Ordering::Relaxed);
                        state.counters.direct_pushes.fetch_add(1, Ordering::Relaxed);
                        state.index.on_store(requester, doc);
                        state.obs.tiers.record_traced(
                            Tier::Peer.index(),
                            t_request.elapsed(),
                            trace,
                        );
                        // A direct push carries no body through the proxy,
                        // so there is nothing to share with followers.
                        return (
                            response(status::OK, "OK")
                                .header("X-Source", "peer-direct")
                                .header("Txn", txn.to_string()),
                            FlightOutcome::Unshared,
                        );
                    }
                    Err(_) => {
                        state.counters.peer_failures.fetch_add(1, Ordering::Relaxed);
                        state.index.on_evict(peer, doc);
                    }
                }
                continue;
            }
            let probe_span = hop_span(trace);
            let t_probe = Instant::now();
            let probed = fetch_from_peer(state, PeerId(client), peer, url, trace, probe_span);
            record_hop(
                state,
                trace,
                probe_span,
                parent,
                EventKind::PeerProbe,
                t_probe.elapsed(),
                format!(
                    "peer={} url={url} outcome={}",
                    peer.0,
                    if probed.is_ok() { "ok" } else { "err" }
                ),
            );
            match probed {
                Ok(cached) => {
                    state.counters.peer_hits.fetch_add(1, Ordering::Relaxed);
                    if state.config.cache_peer_hits {
                        state.cache.insert(doc, url, cached.clone());
                        write_through_to_disk(state, url, &cached, trace);
                    }
                    state.index.on_store(requester, doc);
                    state
                        .obs
                        .tiers
                        .record_traced(Tier::Peer.index(), t_request.elapsed(), trace);
                    let reply = ok_response("peer", &cached);
                    return (reply, FlightOutcome::Doc(cached));
                }
                Err(_) => {
                    // The index was stale (or the peer is gone): self-heal.
                    state.counters.peer_failures.fetch_add(1, Ordering::Relaxed);
                    state.index.on_evict(peer, doc);
                }
            }
        }
    }

    // 3. Origin server. Reaching this point after probing peers means the
    // index path degraded gracefully instead of failing the request.
    if probed_peers {
        state
            .counters
            .peer_fallbacks
            .fetch_add(1, Ordering::Relaxed);
    }
    let origin_span = hop_span(trace);
    let t_origin = Instant::now();
    let fetched = fetch_from_origin(state, url, trace, origin_span);
    record_hop(
        state,
        trace,
        origin_span,
        parent,
        EventKind::OriginFetch,
        t_origin.elapsed(),
        format!(
            "url={url} outcome={}",
            if fetched.is_ok() { "ok" } else { "err" }
        ),
    );
    match fetched {
        Ok(body) => {
            let (reply, cached) =
                serve_origin_fetch(state, requester, doc, url, body, trace, t_request);
            (reply, FlightOutcome::Doc(cached))
        }
        Err(e) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            let (code, reason) = match e {
                OriginError::NotFound => (status::NOT_FOUND, "Not Found".to_string()),
                OriginError::Unavailable => (status::UNAVAILABLE, "Origin Unavailable".to_string()),
                OriginError::Io(e) => (
                    status::UNAVAILABLE,
                    format!("Origin Unreachable ({})", e.kind()),
                ),
            };
            let reply = response(code, &reason);
            (reply, FlightOutcome::Error(code, reason))
        }
    }
}

/// Serves an origin-fetched body: mints the watermark, populates both
/// cache tiers (write-through), updates the index, and counts the fetch.
/// Also hands back the cached doc so a coalescing leader can broadcast it.
#[allow(clippy::too_many_arguments)]
fn serve_origin_fetch(
    state: &ProxyState,
    requester: ClientId,
    doc: DocId,
    url: &str,
    body: Body,
    trace: TraceId,
    t_request: Instant,
) -> (Message, CachedDoc) {
    state
        .counters
        .origin_fetches
        .fetch_add(1, Ordering::Relaxed);
    let cached = CachedDoc {
        watermark: state.signer.watermark(&body),
        body,
    };
    state.cache.insert(doc, url, cached.clone());
    write_through_to_disk(state, url, &cached, trace);
    state.index.on_store(requester, doc);
    state
        .obs
        .tiers
        .record_traced(Tier::Origin.index(), t_request.elapsed(), trace);
    (ok_response("origin", &cached), cached)
}

/// Serves a verified disk-tier document: counts the hit, promotes the
/// document into the memory tier (repeat requests become memory hits),
/// and updates the index.
#[allow(clippy::too_many_arguments)]
fn serve_from_disk(
    state: &ProxyState,
    requester: ClientId,
    doc: DocId,
    url: &str,
    cached: CachedDoc,
    revalidated: bool,
    trace: TraceId,
    t_request: Instant,
) -> Message {
    state.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
    if revalidated {
        state
            .counters
            .disk_revalidations
            .fetch_add(1, Ordering::Relaxed);
    }
    state.cache.insert(doc, url, cached.clone());
    state.index.on_store(requester, doc);
    state
        .obs
        .tiers
        .record_traced(Tier::Disk.index(), t_request.elapsed(), trace);
    ok_response("disk", &cached)
}

/// Best-effort write-through to the disk tier (no-op without one). The
/// store itself never fails a request; filesystem trouble is counted in
/// the tier's `io_errors`.
fn write_through_to_disk(state: &ProxyState, url: &str, cached: &CachedDoc, trace: TraceId) {
    let Some(disk) = &state.disk else { return };
    let t_write = Instant::now();
    disk.store(url, cached);
    state.obs.recorder.record(
        trace,
        EventKind::DiskWrite,
        t_write.elapsed(),
        format!("url={url} bytes={}", cached.byte_size()),
    );
}

/// Publisher purge (INVALIDATE with `Purge: 1`): the document changed at
/// the origin, so the proxy's replicas are dropped from memory and the
/// disk entry is *expired in place* rather than deleted — the next read
/// revalidates with `If-Digest`, so a false alarm still costs only a 304
/// instead of a full refetch. Browser-held replicas are the clients' own
/// responsibility (local discard + piggybacked eviction notices).
fn handle_purge(url: &str, trace: TraceId, state: &ProxyState) {
    let doc = doc_id(state, url);
    let dropped = state.cache.remove(doc, url);
    let expired = state.disk.as_ref().map(|d| d.expire(url)).unwrap_or(false);
    state.obs.recorder.record(
        trace,
        EventKind::Invalidate,
        Duration::ZERO,
        format!("url={url} purge memory={dropped} disk={expired}"),
    );
}

fn handle_invalidate(url: &str, client: u32, trace: TraceId, state: &ProxyState) {
    let doc = doc_id(state, url);
    // Idempotent by construction: the counter moves only when the notice
    // actually removed an index entry. A notice the client replays after
    // a reconnect (it was delivered, but the reply was lost) finds the
    // entry already gone and counts nothing — notices are at-least-once
    // on the wire but exactly-once in the index and the counter.
    let applied = state.index.on_evict(ClientId(client), doc);
    if applied {
        state.counters.invalidations.fetch_add(1, Ordering::Relaxed);
    }
    state.obs.recorder.record(
        trace,
        EventKind::Invalidate,
        Duration::ZERO,
        format!(
            "client={client} url={url} outcome={}",
            if applied { "applied" } else { "stale" }
        ),
    );
}

/// Reply for the `STATS BAPS/1.0` verb: every [`ProxyStats`] field as a
/// header, so operators (and the load generator) can read live counters
/// over the wire without a side channel. Reads one consistent
/// [`ProxyCounters::snapshot`], so the headers always balance.
fn stats_response(state: &ProxyState) -> Message {
    let s = state.stats();
    let disk = state.disk.as_ref().map(DiskTier::stats).unwrap_or_default();
    let sat = state.telemetry.snapshot();
    let mut resp = response(status::OK, "OK").header("Io-Mode", state.config.io_mode.name());
    // Reactor gauges ride the same verb so BENCH/ops tooling needs no new
    // endpoint; `Workers`/`Queue-*` below describe the miss executor in
    // reactor mode.
    if let Some(reactor) = &state.reactor {
        let r = reactor.snapshot();
        resp = resp
            .header("Reactor-Loops", r.loops.to_string())
            .header("Reactor-Fds", r.registered_fds.to_string())
            .header("Reactor-Fds-Peak", r.registered_fds_peak.to_string())
            .header("Reactor-Ready-Peak", r.ready_batch_peak.to_string())
            .header(
                "Reactor-Busy-Permille",
                format!("{:.0}", r.busy_fraction * 1000.0),
            )
            .header("Reactor-Inline", r.inline_served.to_string())
            .header("Reactor-Offloaded", r.offloaded.to_string());
    }
    resp.header("Requests", s.requests.to_string())
        .header("Recorder-Dropped", state.obs.recorder.dropped().to_string())
        .header("Workers", sat.workers.to_string())
        .header("Busy-Workers", sat.busy_workers.to_string())
        .header("Busy-Workers-Peak", sat.busy_workers_peak.to_string())
        .header("Queue-Depth", sat.queue_depth.to_string())
        .header("Queue-Depth-Peak", sat.queue_depth_peak.to_string())
        .header("Queue-Rejected", sat.rejected.to_string())
        .header("Flight-Occupancy", state.inflight.lock().len().to_string())
        .header("Proxy-Hits", s.proxy_hits.to_string())
        .header("Disk-Hits", s.disk_hits.to_string())
        .header("Disk-Revalidations", s.disk_revalidations.to_string())
        .header("Disk-Entries", disk.entries.to_string())
        .header("Disk-Bytes", disk.bytes.to_string())
        .header("Peer-Hits", s.peer_hits.to_string())
        .header("Origin-Fetches", s.origin_fetches.to_string())
        .header("Invalidations", s.invalidations.to_string())
        .header("Peer-Failures", s.peer_failures.to_string())
        .header("Direct-Pushes", s.direct_pushes.to_string())
        .header("Peer-Fallbacks", s.peer_fallbacks.to_string())
        .header("Errors", s.errors.to_string())
        .header("Coalesced-Fetches", s.coalesced_fetches.to_string())
        .header("Cache-Shards", state.cache.n_shards().to_string())
        .header("Cache-Bytes", state.cache.used().to_string())
        .header(
            "Cache-Shard-Entries",
            join_counts(state.cache.shard_stats().iter().map(|s| s.entries)),
        )
        .header(
            "Cache-Shard-Bytes",
            join_counts(state.cache.shard_stats().iter().map(|s| s.bytes)),
        )
        .header(
            "Cache-Lock-Acquires",
            join_counts(state.cache.shard_stats().iter().map(|s| s.lock_acquires)),
        )
        .header("Index-Shards", state.index.n_shards().to_string())
        .header("Index-Entries", state.index.entries().to_string())
        .header(
            "Index-Shard-Entries",
            join_counts(state.index.shard_stats().iter().map(|s| s.entries)),
        )
        .header(
            "Index-Lock-Acquires",
            join_counts(state.index.shard_stats().iter().map(|s| s.lock_acquires)),
        )
}

/// Formats per-shard counters as a comma-separated list header value.
fn join_counts(counts: impl Iterator<Item = u64>) -> String {
    counts.map(|c| c.to_string()).collect::<Vec<_>>().join(",")
}

/// Builds a 200 reply sharing the cached body — `with_body` on an existing
/// [`Body`] is a refcount bump, so no byte of the document is copied
/// between the cache and the socket.
fn ok_response(source: &str, doc: &CachedDoc) -> Message {
    response(status::OK, "OK")
        .header("X-Source", source)
        .header("X-Watermark", doc.watermark.to_hex())
        .with_body(Arc::clone(&doc.body))
}

/// Mediated peer fetch: the peer sees only a transaction id and the URL,
/// never the requester's identity.
///
/// Transport failures (refused dial, deadline expiry, truncated frame) are
/// retried up to `peer_retries` extra times with backoff; an explicit
/// `410 Gone` is authoritative (the peer no longer caches the document)
/// and returns immediately as `ErrorKind::NotFound`.
fn fetch_from_peer(
    state: &ProxyState,
    requester: PeerId,
    peer: ClientId,
    url: &str,
    trace: TraceId,
    span: SpanId,
) -> Result<CachedDoc, io::Error> {
    let addr = state
        .peers
        .read()
        .get(&peer.0)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer not registered"))?;
    let mut attempts_left = state.config.peer_retries;
    let mut backoff = RETRY_BACKOFF;
    loop {
        match probe_peer_once(state, requester, addr, url, trace, span) {
            Err(e) if e.kind() != io::ErrorKind::NotFound && attempts_left > 0 => {
                attempts_left -= 1;
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            other => return other,
        }
    }
}

/// One mediated PEERGET probe, with its own relay transaction.
fn probe_peer_once(
    state: &ProxyState,
    requester: PeerId,
    addr: SocketAddr,
    url: &str,
    trace: TraceId,
    span: SpanId,
) -> Result<CachedDoc, io::Error> {
    let order = state.relay.lock().begin(requester, url);
    let result = (|| -> io::Result<CachedDoc> {
        let stream = dial_with_deadline(addr, state.config.peer_deadline())?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut probe = Message::new(format!("PEERGET {url} BAPS/1.0"))
            .header("Txn", order.txn.0.to_string())
            .header("Trace-Id", trace.to_string());
        if !span.is_none() {
            // The probe's own hop span becomes the parent of the peer's
            // serve span, stitching the tree across processes.
            probe = probe.header("Span-Id", span.to_string());
        }
        write_message(&mut writer, &probe)?;
        let reply = read_message(&mut reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"))?;
        if response_code(&reply) != Some(status::OK) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "peer gone"));
        }
        let watermark = reply
            .get("X-Watermark")
            .and_then(|h| Watermark::from_hex(h).ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing watermark"))?;
        Ok(CachedDoc {
            body: reply.body,
            watermark,
        })
    })();
    match &result {
        Ok(_) => {
            // Close the transaction (delivery happens on the GET reply).
            let _ = state.relay.lock().complete(baps_crypto::FetchReply {
                txn: order.txn,
                body: Vec::new(),
                watermark: state.signer.watermark(b""),
            });
        }
        Err(_) => {
            let _ = state.relay.lock().abort(order.txn);
        }
    }
    result
}

/// Direct-forward mode: orders `peer` to push `url` straight to the
/// requester's registered delivery address. Returns the transaction id the
/// requester should await. The push itself happens synchronously inside
/// the peer before it acknowledges, so a 200 here means the delivery was
/// already sent.
fn order_direct_push(
    state: &ProxyState,
    requester: PeerId,
    peer: ClientId,
    url: &str,
    trace: TraceId,
    span: SpanId,
) -> Result<u64, io::Error> {
    let peer_addr = state
        .peers
        .read()
        .get(&peer.0)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "peer not registered"))?;
    let target_addr = state
        .peers
        .read()
        .get(&requester.0)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "requester not registered"))?;
    let order = state.relay.lock().begin(requester, url);
    let result = (|| -> io::Result<()> {
        let stream = dial_with_deadline(peer_addr, state.config.peer_deadline())?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        let mut push = Message::new(format!("PUSH {url} BAPS/1.0"))
            .header("Txn", order.txn.0.to_string())
            .header("Target", target_addr.to_string())
            .header("Trace-Id", trace.to_string());
        if !span.is_none() {
            push = push.header("Span-Id", span.to_string());
        }
        write_message(&mut writer, &push)?;
        let reply = read_message(&mut reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer hung up"))?;
        if response_code(&reply) != Some(status::OK) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "peer gone"));
        }
        Ok(())
    })();
    match result {
        Ok(()) => {
            let _ = state.relay.lock().abort(order.txn); // bookkeeping only
            Ok(order.txn.0)
        }
        Err(e) => {
            let _ = state.relay.lock().abort(order.txn);
            Err(e)
        }
    }
}

enum OriginError {
    NotFound,
    /// The origin kept failing (5xx or garbage) after every retry.
    Unavailable,
    Io(io::Error),
}

/// A kept-alive connection to the origin server.
struct OriginConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

fn origin_dial(state: &ProxyState) -> io::Result<OriginConn> {
    let stream = dial_with_deadline(state.config.origin_addr, state.config.origin_deadline())?;
    Ok(OriginConn {
        reader: BufReader::new(stream.try_clone()?),
        writer: stream,
    })
}

fn origin_request(
    conn: &mut OriginConn,
    url: &str,
    trace: TraceId,
    span: SpanId,
    if_digest: Option<&str>,
) -> io::Result<Message> {
    let mut msg =
        Message::new(format!("GET {url} ORIGIN/1.0")).header("Trace-Id", trace.to_string());
    if !span.is_none() {
        // The proxy's origin-fetch span parents the origin's serve span.
        msg = msg.header("Span-Id", span.to_string());
    }
    if let Some(digest) = if_digest {
        // Conditional fetch: the origin answers 304 if the digest still
        // matches, saving the body transfer.
        msg = msg.header("If-Digest", digest);
    }
    write_message(&mut conn.writer, &msg)?;
    read_message(&mut conn.reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "origin closed connection"))
}

/// One origin exchange over a pooled keep-alive connection. A checked-out
/// connection may have gone stale since its last use (origin restart,
/// RST); in that case the exchange redials exactly once (not counted as a
/// retry — nothing was ever asked of the origin). Connections that
/// completed a well-framed exchange are checked back in, capped at the
/// worker count; a connection that errored (possibly mid-frame) is
/// discarded so a desynchronised stream can never be reused.
fn origin_attempt(
    state: &ProxyState,
    url: &str,
    trace: TraceId,
    span: SpanId,
    if_digest: Option<&str>,
) -> io::Result<Message> {
    let pooled = state.origin_pool.lock().pop();
    let reused = pooled.is_some();
    let mut conn = match pooled {
        Some(conn) => conn,
        None => origin_dial(state)?,
    };
    let reply = match origin_request(&mut conn, url, trace, span, if_digest) {
        Ok(reply) => reply,
        Err(_) if reused => {
            conn = origin_dial(state)?;
            origin_request(&mut conn, url, trace, span, if_digest)?
        }
        Err(e) => return Err(e),
    };
    // Any fully framed reply (404s and 500s included) leaves the
    // connection in sync and reusable.
    let cap = if state.config.worker_threads == 0 {
        crate::pool::DEFAULT_WORKERS
    } else {
        state.config.worker_threads
    };
    let mut pool = state.origin_pool.lock();
    if pool.len() < cap {
        pool.push(conn);
    }
    drop(pool);
    Ok(reply)
}

/// Fetches `url` from the origin with bounded retries: transport failures
/// and 5xx replies are retried up to `origin_retries` extra times with
/// backoff; 200 and 404 are authoritative.
fn fetch_from_origin(
    state: &ProxyState,
    url: &str,
    trace: TraceId,
    span: SpanId,
) -> Result<Body, OriginError> {
    let mut attempts_left = state.config.origin_retries;
    let mut backoff = RETRY_BACKOFF;
    loop {
        let failure = match origin_attempt(state, url, trace, span, None) {
            Ok(reply) => match response_code(&reply) {
                Some(status::OK) => return Ok(reply.body),
                Some(status::NOT_FOUND) => return Err(OriginError::NotFound),
                _ => OriginError::Unavailable,
            },
            Err(e) => OriginError::Io(e),
        };
        if attempts_left == 0 {
            return Err(failure);
        }
        attempts_left -= 1;
        std::thread::sleep(backoff);
        backoff *= 2;
    }
}

/// Outcome of a conditional (`If-Digest`) origin exchange for a stale
/// disk entry.
enum Revalidation {
    /// The disk copy is still current; its freshness stamp can be reset.
    NotModified,
    /// The document changed; here is the new body.
    Changed(Body),
    /// The origin no longer serves the document (authoritative 404).
    Gone,
    /// The origin was unreachable or kept erroring after every retry;
    /// nothing is known about the copy's currency.
    Failed,
}

/// Revalidates a stale disk entry against the origin with bounded retries
/// (the same transport/5xx retry policy as [`fetch_from_origin`]; 200,
/// 304, and 404 are authoritative).
fn revalidate_with_origin(
    state: &ProxyState,
    url: &str,
    digest_hex: &str,
    trace: TraceId,
    span: SpanId,
) -> Revalidation {
    let mut attempts_left = state.config.origin_retries;
    let mut backoff = RETRY_BACKOFF;
    loop {
        if let Ok(reply) = origin_attempt(state, url, trace, span, Some(digest_hex)) {
            match response_code(&reply) {
                Some(status::OK) => return Revalidation::Changed(reply.body),
                Some(status::NOT_MODIFIED) => return Revalidation::NotModified,
                Some(status::NOT_FOUND) => return Revalidation::Gone,
                _ => {}
            }
        }
        if attempts_left == 0 {
            return Revalidation::Failed;
        }
        attempts_left -= 1;
        std::thread::sleep(backoff);
        backoff *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hit response shares the cached allocation — the body is never
    /// copied between the cache and the outgoing frame.
    #[test]
    fn ok_response_shares_cached_body() {
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(7));
        let body: Body = Arc::from(&b"watermarked body"[..]);
        let cached = CachedDoc {
            watermark: signer.watermark(&body),
            body: Arc::clone(&body),
        };
        let reply = ok_response("proxy", &cached);
        assert!(Arc::ptr_eq(&reply.body, &body));
    }

    /// Followers of a coalesced flight share the leader's body
    /// allocation: the broadcast outcome clones [`CachedDoc`], whose body
    /// is `Arc<[u8]>`, so every waiter holds the same bytes by pointer.
    #[test]
    fn flight_followers_share_one_body_allocation() {
        let signer = ProxySigner::generate(&mut StdRng::seed_from_u64(9));
        let body: Body = Arc::from(&b"herd body"[..]);
        let cached = CachedDoc {
            watermark: signer.watermark(&body),
            body: Arc::clone(&body),
        };
        let entry = Arc::new(Inflight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let followers: Vec<_> = (0..2)
            .map(|_| {
                let entry = Arc::clone(&entry);
                std::thread::spawn(move || entry.wait(Duration::from_secs(5)))
            })
            .collect();
        *entry.slot.lock() = Some(FlightOutcome::Doc(cached));
        entry.cv.notify_all();
        for follower in followers {
            match follower.join().unwrap() {
                FlightOutcome::Doc(doc) => assert!(Arc::ptr_eq(&doc.body, &body)),
                _ => panic!("expected the shared doc"),
            }
        }
    }

    /// A follower whose leader never publishes gives up after its wait
    /// budget instead of hanging.
    #[test]
    fn flight_wait_times_out_to_unshared() {
        let entry = Inflight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        };
        let outcome = entry.wait(Duration::from_millis(20));
        assert!(matches!(outcome, FlightOutcome::Unshared));
    }

    /// The snapshot derives `requests` from the outcome counters, so the
    /// balance identity can never be observed broken.
    #[test]
    fn snapshot_balances_by_construction() {
        let c = ProxyCounters::default();
        c.proxy_hits.fetch_add(3, Ordering::Relaxed);
        c.disk_hits.fetch_add(4, Ordering::Relaxed);
        c.peer_hits.fetch_add(2, Ordering::Relaxed);
        c.origin_fetches.fetch_add(5, Ordering::Relaxed);
        c.errors.fetch_add(1, Ordering::Relaxed);
        let s = c.snapshot();
        assert_eq!(s.requests, 15);
        assert_eq!(
            s.requests,
            s.proxy_hits + s.disk_hits + s.peer_hits + s.origin_fetches + s.errors
        );
    }

    /// The persisted baseline round-trips through the key=value file and
    /// folds into snapshots without breaking the balance identity.
    #[test]
    fn baseline_roundtrip_preserves_balance() {
        let root = std::env::temp_dir().join(format!("baps-baseline-{}", std::process::id()));
        std::fs::create_dir_all(&root).unwrap();
        let before = ProxyStats {
            requests: 10,
            proxy_hits: 4,
            disk_hits: 2,
            disk_revalidations: 1,
            peer_hits: 1,
            origin_fetches: 3,
            invalidations: 7,
            peer_failures: 2,
            direct_pushes: 1,
            peer_fallbacks: 1,
            errors: 0,
            coalesced_fetches: 6,
        };
        persist_baseline(&root, &before);
        let loaded = load_baseline(&root);
        assert_eq!(loaded, before);
        let c = ProxyCounters::default();
        c.proxy_hits.fetch_add(5, Ordering::Relaxed);
        c.errors.fetch_add(1, Ordering::Relaxed);
        let total = c.snapshot().offset_by(&loaded);
        assert_eq!(total.requests, 16);
        assert_eq!(
            total.requests,
            total.proxy_hits
                + total.disk_hits
                + total.peer_hits
                + total.origin_fetches
                + total.errors
        );
        // A missing file is a zero baseline, not an error.
        let empty = load_baseline(&root.join("nope"));
        assert_eq!(empty, ProxyStats::default());
        let _ = std::fs::remove_dir_all(&root);
    }
}
