//! # baps-proxy — the live browsers-aware proxy
//!
//! A working, threaded implementation of the paper's system over loopback
//! TCP: an [`OriginServer`] serving a document corpus, a [`ProxyServer`]
//! that maintains the browser index and mediates anonymous peer fetches,
//! and [`ClientAgent`]s with LRU browser caches that serve `PEERGET`
//! requests, send eviction invalidations, and verify the §6.1 digital
//! watermark on every document they receive.
//!
//! The [`TestBed`] harness wires a full deployment onto ephemeral ports for
//! the integration tests and the `live_proxy` example.
//!
//! The proxy cache is optionally two-tiered: a crash-safe persistent
//! [`DiskTier`] (DESIGN.md §10) sits beneath the sharded memory LRU, so a
//! restarted proxy re-opens its store and comes back warm, with TTL
//! freshness + `If-Digest` revalidation and watermark verification on
//! every disk read (torn files self-heal to the origin path).
//!
//! Observability (DESIGN.md §9) is built in: per-request `Trace-Id`s
//! propagate across every hop, spans land in a deployment-wide
//! [`baps_obs::FlightRecorder`], latencies in per-tier and per-verb
//! histograms, and the `METRICS BAPS/1.0` verb exposes it all as
//! Prometheus text.

#![warn(missing_docs)]

pub mod client;
pub mod disk;
pub mod error;
pub mod fault;
pub mod health;
mod metrics;
pub mod origin;
pub mod pool;
pub mod protocol;
pub mod proxy;
mod reactor;
pub mod runtime;
pub mod shard;
pub mod store;
mod sys;

pub use client::{ClientAgent, ClientConfig, FetchResult, Source, TamperMode};
pub use disk::{DiskConfig, DiskStats, DiskTier};
pub use error::ProxyError;
pub use fault::{FaultConfig, FaultCounts, FaultKind, FaultPlan};
pub use health::{HealthReport, RuleVerdict, SloRule, SloSignal, SloTable, Verdict, WindowRates};
pub use origin::OriginServer;
pub use pool::{dial_with_deadline, ConnRegistry, PoolTelemetry, SaturationSnapshot, WorkerPool};
pub use protocol::{encode_message, read_message, response_code, write_message, Body, Message};
pub use proxy::{IoMode, ProxyConfig, ProxyCounters, ProxyServer, ProxyStats};
pub use reactor::{ReactorSnapshot, ReactorTelemetry};
pub use runtime::{TestBed, TestBedConfig};
pub use shard::{auto_shards, ShardedCache, StripedIndex};
pub use store::{BodyCache, CachedDoc, DocumentStore};
