//! Prometheus rendering for the `METRICS BAPS/1.0` verb.
//!
//! One scrape covers the whole proxy: request counters (from the same
//! consistent [`ProxyCounters::snapshot`](crate::proxy::ProxyCounters) the
//! `STATS` verb reads, so `baps_requests_total` always equals the sum of
//! `baps_served_total` + `baps_errors_total`), cache, disk-tier, and
//! index occupancy with per-shard gauges, the per-tier and per-verb
//! latency histograms, and the flight recorder's fill level. The
//! exposition format and bucket layout are documented in DESIGN.md §9.
//!
//! All `baps_*_total` series are **restart-surviving**: the snapshot
//! folds in the counter baseline persisted beside the disk tier, so a
//! scraper sees monotonic counters across a proxy restart instead of a
//! reset to zero (DESIGN.md §10).

use crate::proxy::ProxyState;
use baps_obs::prom::PromText;

/// Renders the full exposition for `state`.
pub(crate) fn render(state: &ProxyState) -> String {
    let mut out = PromText::new();

    // Who is answering: the crate version and serving mode as an
    // info-style gauge (constant 1), plus seconds since this incarnation
    // started — the standard pair scrapers use to detect restarts and
    // correlate a deploy with a metric shift.
    out.header(
        "baps_build_info",
        "gauge",
        "Build/runtime identity of the serving proxy (value is always 1).",
    );
    out.sample(
        "baps_build_info",
        &[
            ("version", env!("CARGO_PKG_VERSION")),
            ("io_mode", state.config.io_mode.name()),
        ],
        1.0,
    );
    out.gauge(
        "baps_uptime_seconds",
        "Seconds since this proxy incarnation started.",
        state.windows.uptime_secs() as f64,
    );

    // Request counters: one consistent snapshot (baseline included), so
    // the balance identity requests == proxy_hits + disk_hits + peer_hits
    // + origin_fetches + errors holds inside every scrape.
    let s = state.stats();
    out.counter(
        "baps_requests_total",
        "GET requests completed (sum of served tiers plus errors).",
        s.requests,
    );
    out.header(
        "baps_served_total",
        "counter",
        "GET requests served, by serve tier.",
    );
    out.sample(
        "baps_served_total",
        &[("tier", "proxy")],
        s.proxy_hits as f64,
    );
    out.sample("baps_served_total", &[("tier", "disk")], s.disk_hits as f64);
    out.sample("baps_served_total", &[("tier", "peer")], s.peer_hits as f64);
    out.sample(
        "baps_served_total",
        &[("tier", "origin")],
        s.origin_fetches as f64,
    );
    out.counter(
        "baps_errors_total",
        "GET requests answered with an error (404/5xx).",
        s.errors,
    );
    out.counter(
        "baps_invalidations_total",
        "INVALIDATE messages processed (incl. piggybacked evictions).",
        s.invalidations,
    );
    out.counter(
        "baps_peer_failures_total",
        "Peer probes that failed (refused, GONE, bad reply).",
        s.peer_failures,
    );
    out.counter(
        "baps_direct_pushes_total",
        "Peer hits served by direct client-to-client pushes.",
        s.direct_pushes,
    );
    out.counter(
        "baps_peer_fallbacks_total",
        "Requests that degraded from the peer path to the origin.",
        s.peer_fallbacks,
    );
    out.counter(
        "baps_coalesced_fetches_total",
        "Misses coalesced onto another request's in-flight fetch.",
        s.coalesced_fetches,
    );

    // Proxy cache: aggregate occupancy plus hit/eviction counters from the
    // body caches themselves, then per-shard gauges for skew diagnosis.
    let cache = state.cache.stats();
    out.gauge(
        "baps_cache_bytes",
        "Body bytes held by the proxy cache.",
        state.cache.used() as f64,
    );
    out.gauge(
        "baps_cache_entries",
        "Documents held by the proxy cache.",
        state.cache.len() as f64,
    );
    out.counter(
        "baps_cache_hits_total",
        "Proxy cache lookups that hit.",
        cache.hits,
    );
    out.counter(
        "baps_cache_misses_total",
        "Proxy cache lookups that missed.",
        cache.misses,
    );
    out.counter(
        "baps_cache_inserts_total",
        "Documents inserted into the proxy cache.",
        cache.inserts,
    );
    out.counter(
        "baps_cache_evictions_total",
        "Documents evicted to make room.",
        cache.evictions,
    );
    out.counter(
        "baps_cache_evicted_bytes_total",
        "Body bytes evicted to make room.",
        cache.evicted_bytes,
    );
    shard_series(
        &mut out,
        "baps_cache_shard",
        &state.cache.shard_stats(),
        true,
    );

    // Persistent disk tier (series present only when configured, like a
    // real exporter omitting an absent subsystem).
    if let Some(disk) = &state.disk {
        let d = disk.stats();
        out.gauge(
            "baps_disk_bytes",
            "Body bytes held by the disk tier.",
            d.bytes as f64,
        );
        out.gauge(
            "baps_disk_entries",
            "Documents held by the disk tier.",
            d.entries as f64,
        );
        out.counter(
            "baps_disk_reads_fresh_total",
            "Disk reads that returned a verified, fresh document.",
            d.hits,
        );
        out.counter(
            "baps_disk_reads_stale_total",
            "Disk reads that returned a verified but TTL-expired document.",
            d.stale,
        );
        out.counter(
            "baps_disk_revalidations_total",
            "Stale disk entries revalidated via 304 Not Modified.",
            s.disk_revalidations,
        );
        out.counter(
            "baps_disk_writes_total",
            "Documents written through to the disk tier.",
            d.writes,
        );
        out.counter(
            "baps_disk_written_bytes_total",
            "Body bytes written through to the disk tier.",
            d.write_bytes,
        );
        out.counter(
            "baps_disk_heals_total",
            "Torn/corrupt disk files detected by verification and deleted.",
            d.heals,
        );
        out.counter(
            "baps_disk_evictions_total",
            "Disk-tier entries evicted by the byte budget.",
            d.evictions,
        );
        out.counter(
            "baps_disk_io_errors_total",
            "Disk-tier filesystem operations that failed (best-effort).",
            d.io_errors,
        );
    }

    // Browser index.
    let idx = state.index.stats();
    out.gauge(
        "baps_index_entries",
        "(client, doc) entries in the browser index.",
        state.index.entries() as f64,
    );
    out.counter(
        "baps_index_lookups_total",
        "Browser-index lookups performed.",
        idx.lookups,
    );
    out.counter(
        "baps_index_hits_total",
        "Lookups that returned at least one candidate holder.",
        idx.index_hits,
    );
    out.counter(
        "baps_index_updates_total",
        "Index updates applied (stores + evictions).",
        idx.updates,
    );
    out.gauge(
        "baps_index_hit_ratio",
        "Fraction of lookups that found a candidate holder.",
        idx.hit_ratio(),
    );
    shard_series(
        &mut out,
        "baps_index_shard",
        &state.index.shard_stats(),
        false,
    );

    // Flight recorder fill level.
    out.gauge(
        "baps_flight_recorder_events",
        "Events currently held by the flight-recorder ring.",
        state.obs.recorder.len() as f64,
    );
    out.counter(
        "baps_flight_recorder_dropped_total",
        "Events dropped because the ring was full.",
        state.obs.recorder.dropped(),
    );

    // Runtime saturation: how busy the worker pool runs and how long
    // connections wait in the accept backlog — the measured evidence for
    // or against the thread-per-connection architecture.
    let sat = state.telemetry.snapshot();
    out.gauge(
        "baps_workers",
        "Worker threads serving client connections.",
        sat.workers as f64,
    );
    out.gauge(
        "baps_workers_busy",
        "Workers currently serving a connection.",
        sat.busy_workers as f64,
    );
    out.gauge(
        "baps_workers_busy_peak",
        "Most workers simultaneously busy since start.",
        sat.busy_workers_peak as f64,
    );
    out.gauge(
        "baps_queue_depth",
        "Connections currently parked in the accept backlog.",
        sat.queue_depth as f64,
    );
    out.gauge(
        "baps_queue_depth_peak",
        "Deepest the accept backlog has been since start.",
        sat.queue_depth_peak as f64,
    );
    out.counter(
        "baps_queue_rejected_total",
        "Connections dropped because the accept backlog was full.",
        sat.rejected,
    );
    out.gauge(
        "baps_flight_registry_occupancy",
        "In-flight coalescing entries open right now.",
        state.inflight_occupancy() as f64,
    );
    out.header(
        "baps_queue_wait_ms",
        "histogram",
        "Time connections spent in the accept backlog, milliseconds.",
    );
    out.histogram("baps_queue_wait_ms", &[], &sat.queue_wait);

    // Reactor saturation (io_mode=reactor only): the event-driven
    // equivalents of the pool gauges above — registered connections
    // instead of parked threads, loop busy-fraction instead of busy
    // workers. In this mode the `baps_workers*`/`baps_queue_*` series
    // describe the blocking miss executor.
    if let Some(reactor) = &state.reactor {
        let r = reactor.snapshot();
        out.gauge(
            "baps_reactor_loops",
            "Event loops serving client connections.",
            r.loops as f64,
        );
        out.gauge(
            "baps_reactor_registered_fds",
            "Connections currently registered with the event loops.",
            r.registered_fds as f64,
        );
        out.gauge(
            "baps_reactor_registered_fds_peak",
            "Most connections simultaneously registered since start.",
            r.registered_fds_peak as f64,
        );
        out.gauge(
            "baps_reactor_ready_batch_peak",
            "Most ready events one epoll_wait returned at once.",
            r.ready_batch_peak as f64,
        );
        out.counter(
            "baps_reactor_ready_events_total",
            "Readiness events delivered to the event loops.",
            r.ready_events,
        );
        out.counter(
            "baps_reactor_wakeups_total",
            "Eventfd wakeups (new connections and miss completions).",
            r.wakeups,
        );
        out.counter(
            "baps_reactor_inline_dispatch_total",
            "Requests answered inline on an event loop.",
            r.inline_served,
        );
        out.counter(
            "baps_reactor_offloaded_dispatch_total",
            "Requests handed to the blocking miss executor.",
            r.offloaded,
        );
        out.gauge(
            "baps_reactor_busy_fraction",
            "Fraction of wall time the loops spent processing events.",
            r.busy_fraction,
        );
    }

    // Latency histograms: answered GETs by serve tier (tail buckets
    // annotated with OpenMetrics-style exemplar trace ids, resolvable
    // via `TRACE BAPS/1.0`), and every dispatched message by verb.
    out.header(
        "baps_request_latency_ms",
        "histogram",
        "GET serve latency by tier, milliseconds.",
    );
    for (label, h, exemplars) in state.obs.tiers.iter_with_exemplars() {
        out.histogram_with_exemplars(
            "baps_request_latency_ms",
            &[("tier", label)],
            &h,
            &exemplars,
        );
    }
    out.header(
        "baps_verb_latency_ms",
        "histogram",
        "Dispatch latency by protocol verb, milliseconds.",
    );
    for (label, h) in state.obs.verbs.iter() {
        out.histogram("baps_verb_latency_ms", &[("verb", label)], &h);
    }

    out.finish()
}

/// Per-shard gauge/counter series under `prefix` (`…_entries`, `…_bytes`
/// for caches, `…_lock_acquires_total`, `…_lock_wait_micros_total`).
fn shard_series(
    out: &mut PromText,
    prefix: &str,
    shards: &[crate::shard::ShardStats],
    with_bytes: bool,
) {
    let entries = format!("{prefix}_entries");
    out.header(&entries, "gauge", "Entries held, by shard.");
    for (i, st) in shards.iter().enumerate() {
        let shard = i.to_string();
        out.sample(&entries, &[("shard", &shard)], st.entries as f64);
    }
    if with_bytes {
        let bytes = format!("{prefix}_bytes");
        out.header(&bytes, "gauge", "Body bytes held, by shard.");
        for (i, st) in shards.iter().enumerate() {
            let shard = i.to_string();
            out.sample(&bytes, &[("shard", &shard)], st.bytes as f64);
        }
    }
    let acquires = format!("{prefix}_lock_acquires_total");
    out.header(&acquires, "counter", "Shard lock acquisitions.");
    for (i, st) in shards.iter().enumerate() {
        let shard = i.to_string();
        out.sample(&acquires, &[("shard", &shard)], st.lock_acquires as f64);
    }
    let wait = format!("{prefix}_lock_wait_micros_total");
    out.header(
        &wait,
        "counter",
        "Cumulative microseconds spent waiting for the shard lock.",
    );
    for (i, st) in shards.iter().enumerate() {
        let shard = i.to_string();
        out.sample(&wait, &[("shard", &shard)], st.lock_wait_micros as f64);
    }
}
