//! The origin Web server: serves the document corpus over the wire
//! protocol (`GET <url> ORIGIN/1.0`).
//!
//! A `GET` may carry an `If-Digest: <md5-hex>` header (the proxy's
//! disk-tier revalidation): when the named digest still matches the stored
//! body, the origin answers `304 Not Modified` with no body, so a stale
//! disk entry is refreshed for the cost of a header exchange instead of a
//! full document transfer.

use crate::fault::{write_reply_with_fault, FaultKind, FaultPlan};
use crate::pool::{WorkerPool, DEFAULT_BACKLOG, DEFAULT_WORKERS};
use crate::protocol::{read_message, response, status, write_message, Message};
use crate::store::DocumentStore;
use baps_obs::{EventKind, FlightRecorder, SpanId, TraceId};
use parking_lot::RwLock;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running origin server.
pub struct OriginServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Acceptor thread; returns the worker pool on exit for joining.
    handle: Option<JoinHandle<WorkerPool>>,
    hits: Arc<AtomicU64>,
    revalidations: Arc<AtomicU64>,
    store: Arc<RwLock<DocumentStore>>,
}

impl OriginServer {
    /// Starts the server on an ephemeral loopback port with the default
    /// worker-pool sizing.
    pub fn start(store: DocumentStore) -> io::Result<OriginServer> {
        OriginServer::start_with_pool(store, DEFAULT_WORKERS, DEFAULT_BACKLOG)
    }

    /// Starts the server with an explicit worker count and accept backlog.
    /// Each keep-alive connection (e.g. a proxy's pooled origin
    /// connection) occupies a worker while open.
    pub fn start_with_pool(
        store: DocumentStore,
        workers: usize,
        backlog: usize,
    ) -> io::Result<OriginServer> {
        OriginServer::start_with_faults(store, workers, backlog, None)
    }

    /// Starts the server with a fault plan: each served `GET` draws one
    /// origin-site fault decision (500s, mid-reply stalls, dropped
    /// connections) so a proxy's origin-retry path can be exercised
    /// deterministically.
    pub fn start_with_faults(
        store: DocumentStore,
        workers: usize,
        backlog: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<OriginServer> {
        OriginServer::start_with_recorder(store, workers, backlog, faults, None)
    }

    /// Starts the server recording `origin-serve` spans into `recorder`
    /// (the test bed passes the deployment-shared ring).
    pub fn start_with_recorder(
        store: DocumentStore,
        workers: usize,
        backlog: usize,
        faults: Option<Arc<FaultPlan>>,
        recorder: Option<Arc<FlightRecorder>>,
    ) -> io::Result<OriginServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let hits = Arc::new(AtomicU64::new(0));
        let revalidations = Arc::new(AtomicU64::new(0));
        let store = Arc::new(RwLock::new(store));
        let recorder = recorder.unwrap_or_else(|| Arc::new(FlightRecorder::default()));
        let pool = {
            let hits = Arc::clone(&hits);
            let revalidations = Arc::clone(&revalidations);
            let store = Arc::clone(&store);
            WorkerPool::start("baps-origin-worker", workers, backlog, move |stream| {
                let _ = serve_connection(
                    stream,
                    &store,
                    &hits,
                    &revalidations,
                    faults.as_deref(),
                    &recorder,
                );
            })?
        };
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("baps-origin".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        pool.dispatch(stream);
                    }
                    pool
                })?
        };
        Ok(OriginServer {
            addr,
            shutdown,
            handle: Some(handle),
            hits,
            revalidations,
            store,
        })
    }

    /// The address clients/proxies should dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of successful document fetches served (full bodies; `304
    /// Not Modified` answers are counted separately).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of conditional GETs answered `304 Not Modified` (the
    /// requester's `If-Digest` still matched, so no body was sent).
    pub fn revalidations(&self) -> u64 {
        self.revalidations.load(Ordering::Relaxed)
    }

    /// Mutates a stored document (models a changed Web page).
    pub fn mutate(&self, url: &str, body: Vec<u8>) -> bool {
        self.store.write().mutate(url, body)
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake the blocking accept; the acceptor hands the pool back.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            if let Ok(pool) = handle.join() {
                pool.shutdown();
            }
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_connection(
    stream: TcpStream,
    store: &RwLock<DocumentStore>,
    hits: &AtomicU64,
    revalidations: &AtomicU64,
    faults: Option<&FaultPlan>,
    recorder: &FlightRecorder,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(msg) = read_message(&mut reader)? {
        // One fault decision per served GET; other verbs stay honest so
        // the draw sequence tracks document requests exactly.
        let fault = match (msg.tokens().first(), faults) {
            (Some(&"GET"), Some(plan)) => plan.origin_fault(),
            _ => None,
        };
        match fault {
            Some(FaultKind::OriginDrop) => return Ok(()),
            Some(FaultKind::OriginError) => {
                // Pretend the backend failed; the document is NOT counted
                // as served.
                write_message(
                    &mut writer,
                    &response(status::SERVER_ERROR, "Internal Server Error"),
                )?;
            }
            other => {
                let t_serve = std::time::Instant::now();
                let reply = handle_request(&msg, store, hits, revalidations);
                if let ["GET", url, "ORIGIN/1.0"] = msg.tokens().as_slice() {
                    let trace = msg
                        .get("Trace-Id")
                        .and_then(|h| h.parse().ok())
                        .unwrap_or(TraceId::NONE);
                    // On sampled traces the proxy forwards its origin-fetch
                    // span in `Span-Id`; our serve span attaches under it.
                    let parent = msg
                        .get("Span-Id")
                        .and_then(|h| h.parse().ok())
                        .unwrap_or(SpanId::NONE);
                    let serve_span = if parent.is_none() {
                        SpanId::NONE
                    } else {
                        SpanId::mint()
                    };
                    recorder.record_hop(
                        trace,
                        serve_span,
                        parent,
                        EventKind::OriginServe,
                        t_serve.elapsed(),
                        format!(
                            "url={url} outcome={}",
                            match crate::protocol::response_code(&reply) {
                                Some(status::OK) => "ok",
                                Some(status::NOT_MODIFIED) => "not-modified",
                                _ => "miss",
                            }
                        ),
                    );
                }
                let stall = faults.map(FaultPlan::stall).unwrap_or_default();
                if !write_reply_with_fault(&mut writer, &reply, other, stall)? {
                    return Ok(());
                }
            }
        }
    }
    Ok(())
}

fn handle_request(
    msg: &Message,
    store: &RwLock<DocumentStore>,
    hits: &AtomicU64,
    revalidations: &AtomicU64,
) -> Message {
    let tokens = msg.tokens();
    match tokens.as_slice() {
        // `get_shared` hands out the stored allocation: serving a document
        // is a refcount bump under the read lock, not a copy.
        ["GET", url, "ORIGIN/1.0"] => match store.read().get_shared(url) {
            Some(body) => {
                // Conditional GET: the requester names the digest of its
                // stale copy; if unchanged, refresh it without the body.
                if let Some(expect) = msg.get("If-Digest") {
                    if baps_crypto::md5::md5(&body).to_hex() == expect {
                        revalidations.fetch_add(1, Ordering::Relaxed);
                        return response(status::NOT_MODIFIED, "Not Modified")
                            .header("X-Source", "origin");
                    }
                }
                hits.fetch_add(1, Ordering::Relaxed);
                response(status::OK, "OK")
                    .header("X-Source", "origin")
                    .with_body(body)
            }
            None => response(status::NOT_FOUND, "Not Found"),
        },
        _ => response(status::BAD_REQUEST, "Bad Request"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::response_code;
    use std::io::BufReader;

    fn fetch(addr: SocketAddr, url: &str) -> Message {
        exchange(addr, Message::new(format!("GET {url} ORIGIN/1.0")))
    }

    fn exchange(addr: SocketAddr, msg: Message) -> Message {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_message(&mut writer, &msg).unwrap();
        read_message(&mut reader).unwrap().unwrap()
    }

    #[test]
    fn serves_documents() {
        let store = DocumentStore::synthetic(3, 50, 100, 1);
        let expect = store.get("http://origin/doc/1").unwrap().to_vec();
        let server = OriginServer::start(store).unwrap();
        let reply = fetch(server.addr(), "http://origin/doc/1");
        assert_eq!(response_code(&reply), Some(200));
        assert_eq!(&reply.body[..], &expect[..]);
        assert_eq!(server.hits(), 1);
        server.shutdown();
    }

    #[test]
    fn unknown_document_404s() {
        let server = OriginServer::start(DocumentStore::synthetic(1, 10, 20, 2)).unwrap();
        let reply = fetch(server.addr(), "http://nowhere/x");
        assert_eq!(response_code(&reply), Some(404));
        assert_eq!(server.hits(), 0);
    }

    #[test]
    fn bad_request_400s() {
        let server = OriginServer::start(DocumentStore::new()).unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_message(&mut writer, &Message::new("FROB x ORIGIN/1.0")).unwrap();
        let reply = read_message(&mut reader).unwrap().unwrap();
        assert_eq!(response_code(&reply), Some(400));
    }

    #[test]
    fn conditional_get_revalidates_without_body() {
        let store = DocumentStore::synthetic(1, 50, 100, 9);
        let url = "http://origin/doc/0";
        let body = store.get(url).unwrap().to_vec();
        let digest = baps_crypto::md5::md5(&body).to_hex();
        let server = OriginServer::start(store).unwrap();
        // Matching digest: 304, empty body, not counted as a served hit.
        let reply = exchange(
            server.addr(),
            Message::new(format!("GET {url} ORIGIN/1.0")).header("If-Digest", digest),
        );
        assert_eq!(response_code(&reply), Some(status::NOT_MODIFIED));
        assert!(reply.body.is_empty());
        assert_eq!(server.hits(), 0);
        assert_eq!(server.revalidations(), 1);
        // Stale digest: a full 200 with the current body.
        let reply = exchange(
            server.addr(),
            Message::new(format!("GET {url} ORIGIN/1.0"))
                .header("If-Digest", baps_crypto::md5::md5(b"stale copy").to_hex()),
        );
        assert_eq!(response_code(&reply), Some(status::OK));
        assert_eq!(&reply.body[..], &body[..]);
        assert_eq!(server.hits(), 1);
        assert_eq!(server.revalidations(), 1);
    }

    #[test]
    fn mutate_changes_served_body() {
        let server = OriginServer::start(DocumentStore::synthetic(1, 10, 20, 3)).unwrap();
        assert!(server.mutate("http://origin/doc/0", b"new body".to_vec()));
        let reply = fetch(server.addr(), "http://origin/doc/0");
        assert_eq!(&reply.body[..], b"new body");
    }

    #[test]
    fn shutdown_is_clean_and_idempotent() {
        let server = OriginServer::start(DocumentStore::new()).unwrap();
        let addr = server.addr();
        server.shutdown();
        // Connecting after shutdown either fails or is never served.
        match TcpStream::connect(addr) {
            Ok(_) | Err(_) => {}
        }
    }

    #[test]
    fn concurrent_fetches() {
        let store = DocumentStore::synthetic(8, 100, 200, 4);
        let server = OriginServer::start(store).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let reply = fetch(addr, &format!("http://origin/doc/{i}"));
                    assert_eq!(response_code(&reply), Some(200));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(server.hits(), 8);
    }
}
