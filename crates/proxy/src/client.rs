//! A client agent: a browser cache, a peer-serving port, and the fetch
//! logic with end-to-end integrity verification.

use crate::error::ProxyError;
use crate::protocol::{read_message, response, response_code, status, write_message, Message};
use crate::store::{BodyCache, CachedDoc};
use baps_crypto::{verify_document, CryptoError, PublicKey, Watermark};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a requester waits for a direct peer delivery before falling
/// back to a peer-bypassing refetch.
const DELIVERY_TIMEOUT: Duration = Duration::from_secs(2);

/// Where a fetched document came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The client's own browser cache.
    LocalBrowser,
    /// The proxy cache.
    Proxy,
    /// Another client's browser cache (mediated by the proxy).
    Peer,
    /// The origin server.
    Origin,
}

/// A successful fetch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The document body.
    pub body: Vec<u8>,
    /// Where it was served from.
    pub source: Source,
}

struct ClientState {
    cache: Mutex<BodyCache>,
    /// Direct deliveries awaiting pickup, keyed by transaction id.
    deliveries: Mutex<HashMap<u64, CachedDoc>>,
    delivered: Condvar,
    /// Test hook: serve corrupted bodies to peers (a malicious client).
    tamper: AtomicBool,
    peer_serves: AtomicU64,
}

/// A running client agent.
pub struct ClientAgent {
    id: u32,
    proxy_addr: SocketAddr,
    proxy_key: PublicKey,
    state: Arc<ClientState>,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ClientAgent {
    /// Starts the agent: binds a peer-serving port, registers with the
    /// proxy, and is then ready to [`ClientAgent::fetch`].
    pub fn start(
        id: u32,
        proxy_addr: SocketAddr,
        proxy_key: PublicKey,
        browser_capacity: u64,
    ) -> Result<ClientAgent, ProxyError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let peer_addr = listener.local_addr()?;
        let state = Arc::new(ClientState {
            cache: Mutex::new(BodyCache::new(browser_capacity)),
            deliveries: Mutex::new(HashMap::new()),
            delivered: Condvar::new(),
            tamper: AtomicBool::new(false),
            peer_serves: AtomicU64::new(0),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = {
            let state = Arc::clone(&state);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("baps-client-{id}"))
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        let state = Arc::clone(&state);
                        std::thread::spawn(move || {
                            let _ = serve_peer(stream, &state);
                        });
                    }
                })?
        };
        let agent = ClientAgent {
            id,
            proxy_addr,
            proxy_key,
            state,
            peer_addr,
            shutdown,
            handle: Some(handle),
        };
        agent.register()?;
        Ok(agent)
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The peer-serving address (for diagnostics).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer_addr
    }

    /// How many PEERGETs this client has served.
    pub fn peer_serves(&self) -> u64 {
        self.state.peer_serves.load(Ordering::Relaxed)
    }

    /// Bytes in the browser cache.
    pub fn cache_used(&self) -> u64 {
        self.state.cache.lock().used()
    }

    /// Test hook: make this client serve corrupted bodies to its peers.
    pub fn set_tamper(&self, tamper: bool) {
        self.state.tamper.store(tamper, Ordering::Release);
    }

    fn register(&self) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("REGISTER {} BAPS/1.0", self.peer_addr.port()))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol(format!(
                "register rejected: {}",
                reply.start
            )));
        }
        Ok(())
    }

    /// Fetches a document: browser cache, then the browsers-aware proxy.
    /// Peer-served documents are integrity-verified against the proxy's
    /// watermark; on a failed check the request is retried once with
    /// `Bypass-Peers` so a tampering peer cannot poison the client.
    pub fn fetch(&self, url: &str) -> Result<FetchResult, ProxyError> {
        if let Some(doc) = self.state.cache.lock().get(url) {
            return Ok(FetchResult {
                body: doc.body.clone(),
                source: Source::LocalBrowser,
            });
        }
        match self.fetch_via_proxy(url, false) {
            Err(ProxyError::Integrity(_)) | Err(ProxyError::DeliveryTimeout) => {
                // A peer served tampered bytes or never delivered: bypass
                // peers and retry.
                self.fetch_via_proxy(url, true)
            }
            other => other,
        }
    }

    /// Waits for a direct delivery with transaction id `txn`.
    fn await_delivery(&self, txn: u64) -> Option<CachedDoc> {
        let deadline = Instant::now() + DELIVERY_TIMEOUT;
        let mut deliveries = self.state.deliveries.lock();
        loop {
            if let Some(doc) = deliveries.remove(&txn) {
                return Some(doc);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state
                .delivered
                .wait_for(&mut deliveries, deadline - now);
        }
    }

    fn fetch_via_proxy(&self, url: &str, bypass: bool) -> Result<FetchResult, ProxyError> {
        let mut req =
            Message::new(format!("GET {url} BAPS/1.0")).header("Client", self.id.to_string());
        if bypass {
            req = req.header("Bypass-Peers", "1");
        }
        let reply = self.roundtrip(req)?;
        match response_code(&reply) {
            Some(status::OK) => {}
            Some(status::NOT_FOUND) => return Err(ProxyError::NotFound(url.to_owned())),
            other => {
                return Err(ProxyError::Protocol(format!(
                    "unexpected proxy response {other:?}: {}",
                    reply.start
                )))
            }
        }
        let source = match reply.get("X-Source") {
            Some("proxy") => Source::Proxy,
            Some("peer") => Source::Peer,
            Some("origin") => Source::Origin,
            Some("peer-direct") => {
                // Direct-forward mode: the body arrives out of band on our
                // peer port; await it by transaction id.
                let txn: u64 = reply
                    .get("Txn")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProxyError::Protocol("peer-direct without txn".into()))?;
                let doc = self
                    .await_delivery(txn)
                    .ok_or(ProxyError::DeliveryTimeout)?;
                verify_document(&self.proxy_key, &doc.body, &doc.watermark)
                    .map_err(|_| ProxyError::Integrity(CryptoError::WatermarkMismatch))?;
                let evicted = self.state.cache.lock().insert(url, doc.clone());
                for victim in evicted {
                    self.invalidate(&victim)?;
                }
                return Ok(FetchResult {
                    body: doc.body,
                    source: Source::Peer,
                });
            }
            other => {
                return Err(ProxyError::Protocol(format!("bad X-Source: {other:?}")))
            }
        };
        let watermark = reply
            .get("X-Watermark")
            .ok_or_else(|| ProxyError::Protocol("missing watermark".into()))
            .and_then(|h| Watermark::from_hex(h).map_err(ProxyError::Integrity))?;
        verify_document(&self.proxy_key, &reply.body, &watermark)
            .map_err(|_| ProxyError::Integrity(CryptoError::WatermarkMismatch))?;

        // Cache the verified copy; invalidate whatever we evicted.
        let evicted = self.state.cache.lock().insert(
            url,
            CachedDoc {
                body: reply.body.clone(),
                watermark,
            },
        );
        for victim in evicted {
            self.invalidate(&victim)?;
        }
        Ok(FetchResult {
            body: reply.body,
            source,
        })
    }

    /// Tells the proxy this client no longer caches `url`.
    fn invalidate(&self, url: &str) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("INVALIDATE {url} BAPS/1.0"))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol("invalidate rejected".into()));
        }
        Ok(())
    }

    /// Evicts `url` locally and notifies the proxy (models the user
    /// clearing cache entries).
    pub fn evict(&self, url: &str) -> Result<bool, ProxyError> {
        let present = self.state.cache.lock().remove(url);
        if present {
            self.invalidate(url)?;
        }
        Ok(present)
    }

    fn roundtrip(&self, msg: Message) -> Result<Message, ProxyError> {
        let stream = TcpStream::connect(self.proxy_addr)?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        write_message(&mut writer, &msg)?;
        read_message(&mut reader)?
            .ok_or_else(|| ProxyError::Protocol("proxy closed connection".into()))
    }

    /// Stops the peer-serving thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = TcpStream::connect(self.peer_addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ClientAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Serves PEERGET requests from this client's browser cache. The request
/// carries only a transaction id — the peer never learns who is asking.
fn serve_peer(stream: TcpStream, state: &ClientState) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(msg) = read_message(&mut reader)? {
        let tokens: Vec<String> = msg.tokens().iter().map(|s| s.to_string()).collect();
        let reply = match tokens.iter().map(String::as_str).collect::<Vec<_>>().as_slice() {
            ["PEERGET", url, "BAPS/1.0"] => match state.cache.lock().get(url) {
                Some(doc) => {
                    state.peer_serves.fetch_add(1, Ordering::Relaxed);
                    let mut body = doc.body.clone();
                    if state.tamper.load(Ordering::Acquire) && !body.is_empty() {
                        body[0] ^= 0xff;
                    }
                    response(status::OK, "OK")
                        .header("X-Watermark", doc.watermark.to_hex())
                        .with_body(body)
                }
                None => response(status::GONE, "Gone"),
            },
            ["PUSH", url, "BAPS/1.0"] => {
                // Direct-forward order from the proxy: push the document to
                // the requester's delivery address before acknowledging.
                let txn = msg.get("Txn").map(str::to_owned);
                let target = msg.get("Target").map(str::to_owned);
                match (txn, target, state.cache.lock().get(url).cloned()) {
                    (Some(txn), Some(target), Some(doc)) => {
                        state.peer_serves.fetch_add(1, Ordering::Relaxed);
                        let mut body = doc.body.clone();
                        if state.tamper.load(Ordering::Acquire) && !body.is_empty() {
                            body[0] ^= 0xff;
                        }
                        match deliver_to(&target, url, &txn, &doc.watermark, body) {
                            Ok(()) => response(status::OK, "OK"),
                            Err(_) => response(status::GONE, "Delivery Failed"),
                        }
                    }
                    (_, _, None) => response(status::GONE, "Gone"),
                    _ => response(status::BAD_REQUEST, "Bad Request"),
                }
            }
            ["DELIVER", _url, "BAPS/1.0"] => {
                // Incoming direct delivery for one of our own requests.
                let parsed = msg
                    .get("Txn")
                    .and_then(|t| t.parse::<u64>().ok())
                    .zip(msg.get("X-Watermark").and_then(|h| Watermark::from_hex(h).ok()));
                match parsed {
                    Some((txn, watermark)) => {
                        state.deliveries.lock().insert(
                            txn,
                            CachedDoc {
                                body: msg.body.clone(),
                                watermark,
                            },
                        );
                        state.delivered.notify_all();
                        response(status::OK, "OK")
                    }
                    None => response(status::BAD_REQUEST, "Bad Request"),
                }
            }
            _ => response(status::BAD_REQUEST, "Bad Request"),
        };
        write_message(&mut writer, &reply)?;
    }
    Ok(())
}

/// Connects to a requester's delivery address and pushes the document.
fn deliver_to(
    target: &str,
    url: &str,
    txn: &str,
    watermark: &baps_crypto::Watermark,
    body: Vec<u8>,
) -> io::Result<()> {
    let addr: SocketAddr = target
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad target: {e}")))?;
    let stream = TcpStream::connect_timeout(&addr, DELIVERY_TIMEOUT)?;
    stream.set_write_timeout(Some(DELIVERY_TIMEOUT))?;
    let mut writer = stream;
    write_message(
        &mut writer,
        &Message::new(format!("DELIVER {url} BAPS/1.0"))
            .header("Txn", txn)
            .header("X-Watermark", watermark.to_hex())
            .with_body(body),
    )
}
