//! A client agent: a browser cache, a peer-serving port, and the fetch
//! logic with end-to-end integrity verification.

use crate::error::ProxyError;
use crate::fault::{write_reply_with_fault, FaultKind, FaultPlan};
use crate::pool::{dial_with_deadline, WorkerPool};
use crate::protocol::{
    read_message, response, response_code, status, write_message, Body, Message,
};
use crate::store::{BodyCache, CachedDoc};
use baps_crypto::{verify_document, CryptoError, PublicKey, Watermark};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a requester waits for a direct peer delivery before falling
/// back to a peer-bypassing refetch.
const DELIVERY_TIMEOUT: Duration = Duration::from_secs(2);

/// Worker threads serving this client's peer port. PEERGET/PUSH arrive on
/// short-lived proxy connections and DELIVERY on one-shot pushes, so a
/// small pool suffices.
const PEER_WORKERS: usize = 4;
/// Accept backlog for the peer port.
const PEER_BACKLOG: usize = 16;
/// Read deadline on accepted peer-port connections: dialers (the proxy,
/// delivering peers) send their request immediately, so a connection idle
/// this long is a stalled or dead dialer and must not pin a peer worker.
const PEER_SERVE_DEADLINE: Duration = Duration::from_secs(30);

/// What a tampering client serves its peers (test/fault hook; the honest
/// value is [`TamperMode::Honest`]). Every dishonest mode must be caught
/// by the requester's §6.1 watermark verification — never silently
/// accepted as wrong bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperMode {
    /// Serve the cached document faithfully.
    Honest,
    /// Flip the first body byte (classic bit-rot / malicious edit).
    FlipByte,
    /// Serve only the first half of the body, with a matching
    /// `Content-Length` (well-formed frame, wrong content).
    Truncate,
    /// Serve the intact body under a forged (bit-flipped) watermark.
    ForgeWatermark,
}

/// Tuning knobs for one [`ClientAgent`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Browser cache capacity in bytes.
    pub browser_capacity: u64,
    /// Connect/read/write deadline on the proxy connection. A stalled
    /// proxy makes the in-flight call fail with [`ProxyError::Timeout`]
    /// instead of hanging the agent forever. `Duration::ZERO` disables it.
    pub proxy_deadline: Duration,
    /// Extra fetch attempts after the first for retryable failures
    /// (timeouts, transport errors, 5xx), with exponential backoff.
    pub retries: u32,
    /// Initial backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Fault plan consulted by the peer-serving loop (chaos testing).
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            browser_capacity: 32 << 10,
            proxy_deadline: Duration::from_secs(5),
            retries: 2,
            retry_backoff: Duration::from_millis(10),
            faults: None,
        }
    }
}

/// Where a fetched document came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The client's own browser cache.
    LocalBrowser,
    /// The proxy cache.
    Proxy,
    /// Another client's browser cache (mediated by the proxy).
    Peer,
    /// The origin server.
    Origin,
}

/// A successful fetch. The body is a shared handle: a browser-cache hit
/// returns the cached allocation itself, not a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The document body.
    pub body: Body,
    /// Where it was served from.
    pub source: Source,
}

struct ClientState {
    cache: Mutex<BodyCache>,
    /// Direct deliveries awaiting pickup, keyed by transaction id.
    deliveries: Mutex<HashMap<u64, CachedDoc>>,
    delivered: Condvar,
    /// Test hook: what this client serves its peers (a malicious client).
    tamper: Mutex<TamperMode>,
    peer_serves: AtomicU64,
    /// Fault plan consulted once per served PEERGET/PUSH.
    faults: Option<Arc<FaultPlan>>,
}

/// A kept-alive connection to the proxy (paired buffered reader + writer
/// over one TCP stream).
struct ProxyConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ProxyConn {
    fn dial(addr: SocketAddr, deadline: Duration) -> io::Result<ProxyConn> {
        let stream = dial_with_deadline(addr, deadline)?;
        Ok(ProxyConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response exchange on this connection. `Ok(None)` means
    /// the proxy closed the connection cleanly before replying.
    fn exchange(&mut self, msg: &Message) -> io::Result<Option<Message>> {
        write_message(&mut self.writer, msg)?;
        read_message(&mut self.reader)
    }
}

/// A running client agent.
pub struct ClientAgent {
    id: u32,
    proxy_addr: SocketAddr,
    proxy_key: PublicKey,
    config: ClientConfig,
    state: Arc<ClientState>,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Acceptor thread for the peer port; returns the worker pool on exit.
    handle: Option<JoinHandle<WorkerPool>>,
    /// The persistent keep-alive connection to the proxy, dialed lazily
    /// and redialed transparently when the proxy drops it.
    proxy_conn: Mutex<Option<ProxyConn>>,
    /// Eviction notices awaiting the next request. An eviction does not
    /// cost a synchronous INVALIDATE round trip; the notice rides in the
    /// `Evicted` header of the next GET. The proxy tolerates the brief
    /// staleness the same way it tolerates a crashed client (probe fails,
    /// index self-heals).
    pending_evictions: Mutex<Vec<String>>,
    /// When false, every [`ClientAgent::roundtrip`] dials a fresh
    /// connection (the pre-keep-alive behaviour, kept for comparison
    /// benchmarks).
    keep_alive: AtomicBool,
    /// Times the persistent connection was found dead and redialed.
    reconnects: AtomicU64,
}

impl ClientAgent {
    /// Starts the agent with default tuning ([`ClientConfig::default`],
    /// with the given browser cache capacity).
    pub fn start(
        id: u32,
        proxy_addr: SocketAddr,
        proxy_key: PublicKey,
        browser_capacity: u64,
    ) -> Result<ClientAgent, ProxyError> {
        ClientAgent::start_with(
            id,
            proxy_addr,
            proxy_key,
            ClientConfig {
                browser_capacity,
                ..ClientConfig::default()
            },
        )
    }

    /// Starts the agent: binds a peer-serving port, registers with the
    /// proxy, and is then ready to [`ClientAgent::fetch`].
    pub fn start_with(
        id: u32,
        proxy_addr: SocketAddr,
        proxy_key: PublicKey,
        config: ClientConfig,
    ) -> Result<ClientAgent, ProxyError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let peer_addr = listener.local_addr()?;
        let state = Arc::new(ClientState {
            cache: Mutex::new(BodyCache::new(config.browser_capacity)),
            deliveries: Mutex::new(HashMap::new()),
            delivered: Condvar::new(),
            tamper: Mutex::new(TamperMode::Honest),
            peer_serves: AtomicU64::new(0),
            faults: config.faults.clone(),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = {
            let state = Arc::clone(&state);
            WorkerPool::start(
                &format!("baps-client-{id}-peer"),
                PEER_WORKERS,
                PEER_BACKLOG,
                move |stream| {
                    let _ = serve_peer(stream, &state);
                },
            )?
        };
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("baps-client-{id}"))
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        pool.dispatch(stream);
                    }
                    pool
                })?
        };
        let agent = ClientAgent {
            id,
            proxy_addr,
            proxy_key,
            config,
            state,
            peer_addr,
            shutdown,
            handle: Some(handle),
            proxy_conn: Mutex::new(None),
            pending_evictions: Mutex::new(Vec::new()),
            keep_alive: AtomicBool::new(true),
            reconnects: AtomicU64::new(0),
        };
        agent.register()?;
        Ok(agent)
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The peer-serving address (for diagnostics).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer_addr
    }

    /// How many PEERGETs this client has served.
    pub fn peer_serves(&self) -> u64 {
        self.state.peer_serves.load(Ordering::Relaxed)
    }

    /// Bytes in the browser cache.
    pub fn cache_used(&self) -> u64 {
        self.state.cache.lock().used()
    }

    /// Test hook: make this client serve corrupted bodies to its peers
    /// (shorthand for [`TamperMode::FlipByte`] / [`TamperMode::Honest`]).
    pub fn set_tamper(&self, tamper: bool) {
        self.set_tamper_mode(if tamper {
            TamperMode::FlipByte
        } else {
            TamperMode::Honest
        });
    }

    /// Test hook: choose exactly how this client tampers with the
    /// documents it serves to peers.
    pub fn set_tamper_mode(&self, mode: TamperMode) {
        *self.state.tamper.lock() = mode;
    }

    /// Test hook: silently drops `url` from the browser cache *without*
    /// notifying the proxy, so the proxy's browser index still lists this
    /// client as holding it. Models the index racing a local eviction
    /// (crash, out-of-band cache clear). Returns whether it was present.
    pub fn purge_local(&self, url: &str) -> bool {
        self.state.cache.lock().remove(url)
    }

    /// Toggles connection reuse. With keep-alive off every request dials a
    /// fresh proxy connection (the old behaviour); on (the default) a
    /// single persistent connection carries all of this client's traffic.
    pub fn set_keep_alive(&self, keep_alive: bool) {
        self.keep_alive.store(keep_alive, Ordering::Release);
        if !keep_alive {
            *self.proxy_conn.lock() = None;
        }
    }

    /// How many times the persistent proxy connection was found dead and
    /// transparently redialed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Reads the proxy's live counters over the wire (`STATS BAPS/1.0`).
    /// Returns the raw reply; counter values are in its headers
    /// (`Requests`, `Proxy-Hits`, `Peer-Hits`, `Origin-Fetches`,
    /// `Invalidations`, `Peer-Failures`, `Direct-Pushes`).
    pub fn proxy_stats_raw(&self) -> Result<Message, ProxyError> {
        self.roundtrip(Message::new("STATS BAPS/1.0"))
    }

    fn register(&self) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("REGISTER {} BAPS/1.0", self.peer_addr.port()))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol(format!(
                "register rejected: {}",
                reply.start
            )));
        }
        Ok(())
    }

    /// Fetches a document: browser cache, then the browsers-aware proxy.
    /// Peer-served documents are integrity-verified against the proxy's
    /// watermark; on a failed check the request is retried once with
    /// `Bypass-Peers` so a tampering peer cannot poison the client.
    ///
    /// Transient failures ([`ProxyError::is_retryable`]: socket deadlines,
    /// transport errors, proxy 5xx) are retried up to
    /// [`ClientConfig::retries`] extra times with exponential backoff
    /// before the error is surfaced.
    pub fn fetch(&self, url: &str) -> Result<FetchResult, ProxyError> {
        if let Some(doc) = self.state.cache.lock().get(url) {
            return Ok(FetchResult {
                body: doc.body.clone(),
                source: Source::LocalBrowser,
            });
        }
        let mut attempts_left = self.config.retries;
        let mut backoff = self.config.retry_backoff;
        loop {
            let result = match self.fetch_via_proxy(url, false) {
                Err(ProxyError::Integrity(_)) | Err(ProxyError::DeliveryTimeout) => {
                    // A peer served tampered bytes or never delivered:
                    // bypass peers and retry (doesn't consume an attempt —
                    // it is a different request, not a repeat).
                    self.fetch_via_proxy(url, true)
                }
                other => other,
            };
            match result {
                Err(e) if e.is_retryable() && attempts_left > 0 => {
                    attempts_left -= 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff *= 2;
                }
                other => return other,
            }
        }
    }

    /// Waits for a direct delivery with transaction id `txn`.
    fn await_delivery(&self, txn: u64) -> Option<CachedDoc> {
        let deadline = Instant::now() + DELIVERY_TIMEOUT;
        let mut deliveries = self.state.deliveries.lock();
        loop {
            if let Some(doc) = deliveries.remove(&txn) {
                return Some(doc);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state
                .delivered
                .wait_for(&mut deliveries, deadline - now);
        }
    }

    fn fetch_via_proxy(&self, url: &str, bypass: bool) -> Result<FetchResult, ProxyError> {
        let mut req =
            Message::new(format!("GET {url} BAPS/1.0")).header("Client", self.id.to_string());
        let notices: Vec<String> = std::mem::take(&mut *self.pending_evictions.lock());
        if !notices.is_empty() {
            req = req.header("Evicted", notices.join(" "));
        }
        if bypass {
            req = req.header("Bypass-Peers", "1");
        }
        let reply = match self.roundtrip(req) {
            Ok(reply) => reply,
            Err(e) => {
                // The notices may not have reached the proxy: requeue them
                // (invalidation is idempotent, so a duplicate is harmless).
                self.pending_evictions.lock().extend(notices);
                return Err(e);
            }
        };
        match response_code(&reply) {
            Some(status::OK) => {}
            Some(status::NOT_FOUND) => return Err(ProxyError::NotFound(url.to_owned())),
            Some(code @ (status::SERVER_ERROR | status::UNAVAILABLE)) => {
                return Err(ProxyError::Unavailable(code))
            }
            other => {
                return Err(ProxyError::Protocol(format!(
                    "unexpected proxy response {other:?}: {}",
                    reply.start
                )))
            }
        }
        let source = match reply.get("X-Source") {
            Some("proxy") => Source::Proxy,
            Some("peer") => Source::Peer,
            Some("origin") => Source::Origin,
            Some("peer-direct") => {
                // Direct-forward mode: the body arrives out of band on our
                // peer port; await it by transaction id.
                let txn: u64 = reply
                    .get("Txn")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProxyError::Protocol("peer-direct without txn".into()))?;
                let doc = self
                    .await_delivery(txn)
                    .ok_or(ProxyError::DeliveryTimeout)?;
                verify_document(&self.proxy_key, &doc.body, &doc.watermark)
                    .map_err(|_| ProxyError::Integrity(CryptoError::WatermarkMismatch))?;
                let evicted = self.state.cache.lock().insert(url, doc.clone());
                self.pending_evictions.lock().extend(evicted);
                return Ok(FetchResult {
                    body: doc.body,
                    source: Source::Peer,
                });
            }
            other => return Err(ProxyError::Protocol(format!("bad X-Source: {other:?}"))),
        };
        let watermark = reply
            .get("X-Watermark")
            .ok_or_else(|| ProxyError::Protocol("missing watermark".into()))
            .and_then(|h| Watermark::from_hex(h).map_err(ProxyError::Integrity))?;
        verify_document(&self.proxy_key, &reply.body, &watermark)
            .map_err(|_| ProxyError::Integrity(CryptoError::WatermarkMismatch))?;

        // Cache the verified copy; queue eviction notices for the next
        // request instead of spending a round trip per victim now.
        let evicted = self.state.cache.lock().insert(
            url,
            CachedDoc {
                body: reply.body.clone(),
                watermark,
            },
        );
        self.pending_evictions.lock().extend(evicted);
        Ok(FetchResult {
            body: reply.body,
            source,
        })
    }

    /// Tells the proxy this client no longer caches `url`.
    fn invalidate(&self, url: &str) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("INVALIDATE {url} BAPS/1.0"))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol("invalidate rejected".into()));
        }
        Ok(())
    }

    /// Evicts `url` locally and notifies the proxy (models the user
    /// clearing cache entries).
    pub fn evict(&self, url: &str) -> Result<bool, ProxyError> {
        let present = self.state.cache.lock().remove(url);
        if present {
            self.invalidate(url)?;
        }
        Ok(present)
    }

    /// One request/response against the proxy.
    ///
    /// With keep-alive on, the persistent connection is dialed lazily on
    /// first use and reused for every subsequent message. If the proxy
    /// drops it between requests (restart, [`drop_connections`], idle
    /// reaping), the exchange fails or returns a clean EOF; the client
    /// then redials once and replays the message. Only an error on a
    /// *fresh* connection propagates, so a mid-session connection loss is
    /// invisible to callers.
    ///
    /// [`drop_connections`]: crate::proxy::ProxyServer::drop_connections
    fn roundtrip(&self, msg: Message) -> Result<Message, ProxyError> {
        // EOF before a reply is a transport failure (restart, drop), not a
        // protocol violation — callers may retry it.
        fn hung_up() -> ProxyError {
            ProxyError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "proxy closed connection",
            ))
        }
        if !self.keep_alive.load(Ordering::Acquire) {
            let mut conn = ProxyConn::dial(self.proxy_addr, self.config.proxy_deadline)?;
            return conn.exchange(&msg)?.ok_or_else(hung_up);
        }
        let mut guard = self.proxy_conn.lock();
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(ProxyConn::dial(
                self.proxy_addr,
                self.config.proxy_deadline,
            )?);
        }
        let conn = guard.as_mut().expect("connection dialed above");
        match conn.exchange(&msg) {
            Ok(Some(reply)) => Ok(reply),
            // An error or EOF on a reused connection means it went stale
            // while idle: reconnect and replay the request once.
            Ok(None) | Err(_) if reused => {
                *guard = None;
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                let mut conn = ProxyConn::dial(self.proxy_addr, self.config.proxy_deadline)?;
                let reply = conn.exchange(&msg)?.ok_or_else(hung_up)?;
                *guard = Some(conn);
                Ok(reply)
            }
            Ok(None) => {
                *guard = None;
                Err(hung_up())
            }
            Err(e) => {
                *guard = None;
                Err(e.into())
            }
        }
    }

    /// Stops the peer-serving threads and closes the proxy connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Close the keep-alive proxy connection so the proxy-side worker
        // serving it is freed.
        *self.proxy_conn.lock() = None;
        // Wake the blocking accept; the acceptor hands the pool back.
        let _ = TcpStream::connect(self.peer_addr);
        if let Some(handle) = self.handle.take() {
            if let Ok(pool) = handle.join() {
                pool.shutdown();
            }
        }
    }
}

impl Drop for ClientAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Applies a tamper mode to a document about to be served to a peer:
/// returns the (possibly corrupted) body and watermark hex to send. The
/// honest path shares the cached body; only the corrupting modes copy.
fn tampered(mode: TamperMode, body: &Body, watermark_hex: String) -> (Body, String) {
    let mut hex = watermark_hex;
    let body = match mode {
        TamperMode::Honest => Arc::clone(body),
        TamperMode::FlipByte => {
            let mut bytes = body.to_vec();
            if let Some(b) = bytes.first_mut() {
                *b ^= 0xff;
            }
            bytes.into()
        }
        TamperMode::Truncate => {
            let half = body.len() / 2;
            Body::from(&body[..half])
        }
        TamperMode::ForgeWatermark => {
            // Swap the first hex digit for a different one: still parses
            // as a watermark, but verifies against nothing.
            let forged = if hex.starts_with('0') { "1" } else { "0" };
            hex.replace_range(0..1, forged);
            Arc::clone(body)
        }
    };
    (body, hex)
}

/// Serves PEERGET requests from this client's browser cache. The request
/// carries only a transaction id — the peer never learns who is asking.
///
/// When a fault plan is installed, exactly one fault draw happens per
/// served PEERGET/PUSH (never for DELIVER or malformed requests):
/// `PeerDrop` closes the connection without replying, `PeerRefuse`
/// answers 410 as if the document were gone, and the wire faults
/// (stall/truncate/corrupt) distort the otherwise-correct reply via
/// [`write_reply_with_fault`].
fn serve_peer(stream: TcpStream, state: &ClientState) -> io::Result<()> {
    // Dialers send their request immediately; an idle connection is a
    // stalled or dead dialer that must not pin this worker forever.
    stream.set_read_timeout(Some(PEER_SERVE_DEADLINE))?;
    stream.set_write_timeout(Some(PEER_SERVE_DEADLINE))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(msg) = read_message(&mut reader)? {
        let tokens = msg.tokens();
        // Fault decisions apply only to requests we serve *to* peers.
        let faultable = matches!(tokens.first(), Some(&"PEERGET") | Some(&"PUSH"));
        let fault = match (faultable, state.faults.as_deref()) {
            (true, Some(plan)) => plan.peer_fault(),
            _ => None,
        };
        if fault == Some(FaultKind::PeerDrop) {
            // Vanish mid-conversation: the dialer sees an abrupt EOF.
            return Ok(());
        }
        let reply = match tokens.as_slice() {
            _ if fault == Some(FaultKind::PeerRefuse) => {
                // Claim the document is gone even though we may hold it.
                response(status::GONE, "Gone")
            }
            ["PEERGET", url, "BAPS/1.0"] => {
                // Clone the handle out so the cache lock is dropped before
                // the reply is built and written.
                let doc = state.cache.lock().get(url).cloned();
                match doc {
                    Some(doc) => {
                        state.peer_serves.fetch_add(1, Ordering::Relaxed);
                        let (body, hex) =
                            tampered(*state.tamper.lock(), &doc.body, doc.watermark.to_hex());
                        response(status::OK, "OK")
                            .header("X-Watermark", hex)
                            .with_body(body)
                    }
                    None => response(status::GONE, "Gone"),
                }
            }
            ["PUSH", url, "BAPS/1.0"] => {
                // Direct-forward order from the proxy: push the document to
                // the requester's delivery address before acknowledging.
                let txn = msg.get("Txn").map(str::to_owned);
                let target = msg.get("Target").map(str::to_owned);
                match (txn, target, state.cache.lock().get(url).cloned()) {
                    (Some(txn), Some(target), Some(doc)) => {
                        state.peer_serves.fetch_add(1, Ordering::Relaxed);
                        let (body, hex) =
                            tampered(*state.tamper.lock(), &doc.body, doc.watermark.to_hex());
                        match deliver_to(&target, url, &txn, &hex, body) {
                            Ok(()) => response(status::OK, "OK"),
                            Err(_) => response(status::GONE, "Delivery Failed"),
                        }
                    }
                    (_, _, None) => response(status::GONE, "Gone"),
                    _ => response(status::BAD_REQUEST, "Bad Request"),
                }
            }
            ["DELIVER", _url, "BAPS/1.0"] => {
                // Incoming direct delivery for one of our own requests.
                let parsed = msg.get("Txn").and_then(|t| t.parse::<u64>().ok()).zip(
                    msg.get("X-Watermark")
                        .and_then(|h| Watermark::from_hex(h).ok()),
                );
                match parsed {
                    Some((txn, watermark)) => {
                        state.deliveries.lock().insert(
                            txn,
                            CachedDoc {
                                body: msg.body.clone(),
                                watermark,
                            },
                        );
                        state.delivered.notify_all();
                        response(status::OK, "OK")
                    }
                    None => response(status::BAD_REQUEST, "Bad Request"),
                }
            }
            _ => response(status::BAD_REQUEST, "Bad Request"),
        };
        let stall = state
            .faults
            .as_deref()
            .map(FaultPlan::stall)
            .unwrap_or_default();
        if !write_reply_with_fault(&mut writer, &reply, fault, stall)? {
            return Ok(());
        }
    }
    Ok(())
}

/// Connects to a requester's delivery address and pushes the document.
fn deliver_to(
    target: &str,
    url: &str,
    txn: &str,
    watermark_hex: &str,
    body: Body,
) -> io::Result<()> {
    let addr: SocketAddr = target
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad target: {e}")))?;
    let stream = TcpStream::connect_timeout(&addr, DELIVERY_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(DELIVERY_TIMEOUT))?;
    let mut writer = stream;
    write_message(
        &mut writer,
        &Message::new(format!("DELIVER {url} BAPS/1.0"))
            .header("Txn", txn)
            .header("X-Watermark", watermark_hex)
            .with_body(body),
    )
}
