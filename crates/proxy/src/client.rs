//! A client agent: a browser cache, a peer-serving port, and the fetch
//! logic with end-to-end integrity verification.
//!
//! The agent is also where request tracing starts: every logical
//! [`ClientAgent::fetch`] mints a [`TraceId`] that rides a `Trace-Id`
//! header on each hop (GET to the proxy, the proxy's PEERGET/PUSH to a
//! peer, the origin fetch, the direct DELIVER), so one grep through a
//! flight-recorder dump reconstructs the whole request path.
//!
//! Head-sampled traces ([`baps_obs::span::sampled`], a deterministic 1-in-N
//! hash of the trace id) additionally carry a causal **span tree**: the
//! client mints the root span beside the trace id and forwards it in the
//! `Span-Id` header; every downstream hop mints child spans under it, so a
//! `TRACE BAPS/1.0` dump reassembles the whole client→proxy→peer/origin
//! tree with parent/child timing attribution.

use crate::error::ProxyError;
use crate::fault::{write_reply_with_fault, FaultKind, FaultPlan};
use crate::pool::{dial_with_deadline, WorkerPool};
use crate::protocol::{
    read_message, response, response_code, status, write_message, Body, Message,
};
use crate::proxy::{verb_index, PROXY_VERBS};
use crate::store::{BodyCache, CachedDoc};
use baps_crypto::{verify_document, CryptoError, PublicKey, Watermark};
use baps_obs::{
    span, EventKind, FlightRecorder, LabeledHistograms, SpanId, Tier, TraceId, TIER_NAMES,
};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long a requester waits for a direct peer delivery before falling
/// back to a peer-bypassing refetch.
const DELIVERY_TIMEOUT: Duration = Duration::from_secs(2);

/// Latency above which a plain cache-hit fetch earns a flight-recorder
/// span. Multi-hop fetches (peer, origin) and errors are always recorded;
/// fast local/proxy hits are the ~50k req/s bulk, fully accounted by the
/// tier histograms, and recording each one measurably taxed the hot path.
const SLOW_FETCH: Duration = Duration::from_millis(2);

/// Worker threads serving this client's peer port. PEERGET/PUSH arrive on
/// short-lived proxy connections and DELIVERY on one-shot pushes, so a
/// small pool suffices.
const PEER_WORKERS: usize = 4;
/// Accept backlog for the peer port.
const PEER_BACKLOG: usize = 16;
/// Read deadline on accepted peer-port connections: dialers (the proxy,
/// delivering peers) send their request immediately, so a connection idle
/// this long is a stalled or dead dialer and must not pin a peer worker.
const PEER_SERVE_DEADLINE: Duration = Duration::from_secs(30);

/// What a tampering client serves its peers (test/fault hook; the honest
/// value is [`TamperMode::Honest`]). Every dishonest mode must be caught
/// by the requester's §6.1 watermark verification — never silently
/// accepted as wrong bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TamperMode {
    /// Serve the cached document faithfully.
    Honest,
    /// Flip the first body byte (classic bit-rot / malicious edit).
    FlipByte,
    /// Serve only the first half of the body, with a matching
    /// `Content-Length` (well-formed frame, wrong content).
    Truncate,
    /// Serve the intact body under a forged (bit-flipped) watermark.
    ForgeWatermark,
}

/// Tuning knobs for one [`ClientAgent`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Browser cache capacity in bytes.
    pub browser_capacity: u64,
    /// Connect/read/write deadline on the proxy connection. A stalled
    /// proxy makes the in-flight call fail with [`ProxyError::Timeout`]
    /// instead of hanging the agent forever. `Duration::ZERO` disables it.
    pub proxy_deadline: Duration,
    /// Extra fetch attempts after the first for retryable failures
    /// (timeouts, transport errors, 5xx), with exponential backoff.
    pub retries: u32,
    /// Initial backoff before the first retry; doubles per attempt.
    pub retry_backoff: Duration,
    /// Fault plan consulted by the peer-serving loop (chaos testing).
    pub faults: Option<Arc<FaultPlan>>,
    /// Shared flight recorder (`None` gives the agent a private ring; the
    /// test bed shares one ring across the whole deployment).
    pub recorder: Option<Arc<FlightRecorder>>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            browser_capacity: 32 << 10,
            proxy_deadline: Duration::from_secs(5),
            retries: 2,
            retry_backoff: Duration::from_millis(10),
            faults: None,
            recorder: None,
        }
    }
}

/// Where a fetched document came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// The client's own browser cache.
    LocalBrowser,
    /// The proxy's in-memory cache.
    Proxy,
    /// The proxy's persistent disk tier (a warm-restart or spill hit).
    ProxyDisk,
    /// Another client's browser cache (mediated by the proxy).
    Peer,
    /// The origin server.
    Origin,
}

/// A successful fetch. The body is a shared handle: a browser-cache hit
/// returns the cached allocation itself, not a copy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchResult {
    /// The document body.
    pub body: Body,
    /// Where it was served from.
    pub source: Source,
}

struct ClientState {
    id: u32,
    cache: Mutex<BodyCache>,
    /// Direct deliveries awaiting pickup, keyed by transaction id.
    deliveries: Mutex<HashMap<u64, CachedDoc>>,
    delivered: Condvar,
    /// Test hook: what this client serves its peers (a malicious client).
    tamper: Mutex<TamperMode>,
    peer_serves: AtomicU64,
    /// Fault plan consulted once per served PEERGET/PUSH.
    faults: Option<Arc<FaultPlan>>,
    /// Flight recorder the peer-serving loop records into.
    recorder: Arc<FlightRecorder>,
}

/// A kept-alive connection to the proxy (paired buffered reader + writer
/// over one TCP stream).
struct ProxyConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ProxyConn {
    fn dial(addr: SocketAddr, deadline: Duration) -> io::Result<ProxyConn> {
        let stream = dial_with_deadline(addr, deadline)?;
        Ok(ProxyConn {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// One request/response exchange on this connection. `Ok(None)` means
    /// the proxy closed the connection cleanly before replying.
    fn exchange(&mut self, msg: &Message) -> io::Result<Option<Message>> {
        write_message(&mut self.writer, msg)?;
        read_message(&mut self.reader)
    }
}

/// A running client agent.
pub struct ClientAgent {
    id: u32,
    proxy_addr: SocketAddr,
    proxy_key: PublicKey,
    config: ClientConfig,
    state: Arc<ClientState>,
    peer_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    /// Acceptor thread for the peer port; returns the worker pool on exit.
    handle: Option<JoinHandle<WorkerPool>>,
    /// The persistent keep-alive connection to the proxy, dialed lazily
    /// and redialed transparently when the proxy drops it.
    proxy_conn: Mutex<Option<ProxyConn>>,
    /// Eviction notices awaiting the next request. An eviction does not
    /// cost a synchronous INVALIDATE round trip; the notice rides in the
    /// `Evicted` header of the next GET. The proxy tolerates the brief
    /// staleness the same way it tolerates a crashed client (probe fails,
    /// index self-heals).
    pending_evictions: Mutex<Vec<String>>,
    /// When false, every [`ClientAgent::roundtrip`] dials a fresh
    /// connection (the pre-keep-alive behaviour, kept for comparison
    /// benchmarks).
    keep_alive: AtomicBool,
    /// Times the persistent connection was found dead and redialed.
    reconnects: AtomicU64,
    /// Monotone per-agent fetch counter; with the client id it forms the
    /// [`TraceId`] minted for each logical fetch.
    fetch_seq: AtomicU64,
    obs: ClientObs,
}

/// Client-side observability: the (possibly deployment-shared) flight
/// recorder plus this agent's own tier/verb latency histograms.
struct ClientObs {
    recorder: Arc<FlightRecorder>,
    /// Whole-fetch latency by serve tier, as the *client* saw it (includes
    /// the wire, retries, and watermark verification).
    tiers: LabeledHistograms,
    /// Round-trip latency by protocol verb, client side.
    verbs: LabeledHistograms,
}

impl ClientAgent {
    /// Starts the agent with default tuning ([`ClientConfig::default`],
    /// with the given browser cache capacity).
    pub fn start(
        id: u32,
        proxy_addr: SocketAddr,
        proxy_key: PublicKey,
        browser_capacity: u64,
    ) -> Result<ClientAgent, ProxyError> {
        ClientAgent::start_with(
            id,
            proxy_addr,
            proxy_key,
            ClientConfig {
                browser_capacity,
                ..ClientConfig::default()
            },
        )
    }

    /// Starts the agent: binds a peer-serving port, registers with the
    /// proxy, and is then ready to [`ClientAgent::fetch`].
    pub fn start_with(
        id: u32,
        proxy_addr: SocketAddr,
        proxy_key: PublicKey,
        config: ClientConfig,
    ) -> Result<ClientAgent, ProxyError> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let peer_addr = listener.local_addr()?;
        let recorder = config
            .recorder
            .clone()
            .unwrap_or_else(|| Arc::new(FlightRecorder::default()));
        let state = Arc::new(ClientState {
            id,
            cache: Mutex::new(BodyCache::new(config.browser_capacity)),
            deliveries: Mutex::new(HashMap::new()),
            delivered: Condvar::new(),
            tamper: Mutex::new(TamperMode::Honest),
            peer_serves: AtomicU64::new(0),
            faults: config.faults.clone(),
            recorder: Arc::clone(&recorder),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let pool = {
            let state = Arc::clone(&state);
            WorkerPool::start(
                &format!("baps-client-{id}-peer"),
                PEER_WORKERS,
                PEER_BACKLOG,
                move |stream| {
                    let _ = serve_peer(stream, &state);
                },
            )?
        };
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("baps-client-{id}"))
                .spawn(move || {
                    for conn in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = conn else { continue };
                        pool.dispatch(stream);
                    }
                    pool
                })?
        };
        let agent = ClientAgent {
            id,
            proxy_addr,
            proxy_key,
            config,
            state,
            peer_addr,
            shutdown,
            handle: Some(handle),
            proxy_conn: Mutex::new(None),
            pending_evictions: Mutex::new(Vec::new()),
            keep_alive: AtomicBool::new(true),
            reconnects: AtomicU64::new(0),
            fetch_seq: AtomicU64::new(0),
            obs: ClientObs {
                recorder,
                tiers: LabeledHistograms::new(&TIER_NAMES),
                verbs: LabeledHistograms::new(&PROXY_VERBS),
            },
        };
        agent.register()?;
        Ok(agent)
    }

    /// This client's id.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The peer-serving address (for diagnostics).
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer_addr
    }

    /// How many PEERGETs this client has served.
    pub fn peer_serves(&self) -> u64 {
        self.state.peer_serves.load(Ordering::Relaxed)
    }

    /// Bytes in the browser cache.
    pub fn cache_used(&self) -> u64 {
        self.state.cache.lock().used()
    }

    /// Test hook: make this client serve corrupted bodies to its peers
    /// (shorthand for [`TamperMode::FlipByte`] / [`TamperMode::Honest`]).
    pub fn set_tamper(&self, tamper: bool) {
        self.set_tamper_mode(if tamper {
            TamperMode::FlipByte
        } else {
            TamperMode::Honest
        });
    }

    /// Test hook: choose exactly how this client tampers with the
    /// documents it serves to peers.
    pub fn set_tamper_mode(&self, mode: TamperMode) {
        *self.state.tamper.lock() = mode;
    }

    /// Test hook: silently drops `url` from the browser cache *without*
    /// notifying the proxy, so the proxy's browser index still lists this
    /// client as holding it. Models the index racing a local eviction
    /// (crash, out-of-band cache clear). Returns whether it was present.
    pub fn purge_local(&self, url: &str) -> bool {
        self.state.cache.lock().remove(url)
    }

    /// Toggles connection reuse. With keep-alive off every request dials a
    /// fresh proxy connection (the old behaviour); on (the default) a
    /// single persistent connection carries all of this client's traffic.
    pub fn set_keep_alive(&self, keep_alive: bool) {
        self.keep_alive.store(keep_alive, Ordering::Release);
        if !keep_alive {
            *self.proxy_conn.lock() = None;
        }
    }

    /// How many times the persistent proxy connection was found dead and
    /// transparently redialed.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// The flight recorder this agent records into.
    pub fn recorder(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.obs.recorder)
    }

    /// Client-observed whole-fetch latency for one serve tier.
    pub fn tier_latency(&self, tier: Tier) -> baps_obs::LatencyHistogram {
        self.obs.tiers.snapshot(tier.index())
    }

    /// Reads the proxy's live counters over the wire (`STATS BAPS/1.0`).
    /// Returns the raw reply; counter values are in its headers
    /// (`Requests`, `Proxy-Hits`, `Peer-Hits`, `Origin-Fetches`,
    /// `Invalidations`, `Peer-Failures`, `Direct-Pushes`).
    pub fn proxy_stats_raw(&self) -> Result<Message, ProxyError> {
        self.roundtrip(Message::new("STATS BAPS/1.0"))
    }

    /// Scrapes the proxy's Prometheus exposition over the wire
    /// (`METRICS BAPS/1.0`). The exposition text is the reply body.
    pub fn proxy_metrics_raw(&self) -> Result<Message, ProxyError> {
        self.roundtrip(Message::new("METRICS BAPS/1.0"))
    }

    /// Scrapes the deployment's causal-trace span dump over the wire
    /// (`TRACE BAPS/1.0`). The reply body is JSONL, one
    /// [`baps_obs::SpanRecord`] per line, assembled into trees with
    /// [`baps_obs::span::assemble`].
    pub fn proxy_trace_raw(&self) -> Result<Message, ProxyError> {
        self.roundtrip(Message::new("TRACE BAPS/1.0"))
    }

    /// Scrapes the proxy's SLO verdict document over the wire
    /// (`HEALTH BAPS/1.0`). The reply body parses with
    /// [`crate::HealthReport::parse`]; the `Verdict` header carries the
    /// worst rule verdict for cheap checks.
    pub fn proxy_health_raw(&self) -> Result<Message, ProxyError> {
        self.roundtrip(Message::new("HEALTH BAPS/1.0"))
    }

    fn register(&self) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("REGISTER {} BAPS/1.0", self.peer_addr.port()))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol(format!(
                "register rejected: {}",
                reply.start
            )));
        }
        Ok(())
    }

    /// Fetches a document: browser cache, then the browsers-aware proxy.
    /// Peer-served documents are integrity-verified against the proxy's
    /// watermark; on a failed check the request is retried once with
    /// `Bypass-Peers` so a tampering peer cannot poison the client.
    ///
    /// Transient failures ([`ProxyError::is_retryable`]: socket deadlines,
    /// transport errors, proxy 5xx) are retried up to
    /// [`ClientConfig::retries`] extra times with exponential backoff
    /// before the error is surfaced.
    pub fn fetch(&self, url: &str) -> Result<FetchResult, ProxyError> {
        // One trace id per *logical* fetch: retries and the bypass refetch
        // reuse it, so a dump shows them as spans of the same request.
        let trace = TraceId::mint(self.id, self.fetch_seq.fetch_add(1, Ordering::Relaxed));
        // Head sampling: 1-in-N traces carry a full causal span tree. The
        // root span is minted here at the edge; every downstream hop
        // attaches under it via the `Span-Id` header.
        let root = span::hop(trace);
        let t_fetch = Instant::now();
        let local = self.state.cache.lock().get(url).map(|doc| doc.body.clone());
        if let Some(body) = local {
            let elapsed = t_fetch.elapsed();
            self.obs.tiers.record(Tier::Local.index(), elapsed);
            if !root.is_none() || elapsed > SLOW_FETCH {
                self.obs.recorder.record_hop(
                    trace,
                    root,
                    SpanId::NONE,
                    EventKind::Fetch,
                    elapsed,
                    format!("client={} url={url} source=local", self.id),
                );
            }
            return Ok(FetchResult {
                body,
                source: Source::LocalBrowser,
            });
        }
        let mut attempts_left = self.config.retries;
        let mut backoff = self.config.retry_backoff;
        loop {
            let result = match self.fetch_via_proxy(url, false, trace, root) {
                Err(ProxyError::Integrity(_)) | Err(ProxyError::DeliveryTimeout) => {
                    // A peer served tampered bytes or never delivered:
                    // bypass peers and retry (doesn't consume an attempt —
                    // it is a different request, not a repeat).
                    self.fetch_via_proxy(url, true, trace, root)
                }
                other => other,
            };
            match result {
                Err(e) if e.is_retryable() && attempts_left > 0 => {
                    attempts_left -= 1;
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff *= 2;
                }
                other => {
                    let elapsed = t_fetch.elapsed();
                    match &other {
                        Ok(got) => {
                            let tier = match got.source {
                                Source::LocalBrowser => Tier::Local,
                                Source::Proxy => Tier::Proxy,
                                Source::ProxyDisk => Tier::Disk,
                                Source::Peer => Tier::Peer,
                                Source::Origin => Tier::Origin,
                            };
                            self.obs.tiers.record(tier.index(), elapsed);
                            // Multi-hop fetches are always worth a span;
                            // plain cache hits only when they ran slow or
                            // the trace is head-sampled (whose tree needs
                            // its root); the histograms account for the
                            // fast unsampled bulk.
                            let multi_hop = matches!(tier, Tier::Peer | Tier::Origin);
                            if !root.is_none() || multi_hop || elapsed > SLOW_FETCH {
                                self.obs.recorder.record_hop(
                                    trace,
                                    root,
                                    SpanId::NONE,
                                    EventKind::Fetch,
                                    elapsed,
                                    format!("client={} url={url} source={}", self.id, tier.name()),
                                );
                            }
                        }
                        Err(e) => self.obs.recorder.record_hop(
                            trace,
                            root,
                            SpanId::NONE,
                            EventKind::Fetch,
                            elapsed,
                            format!("client={} url={url} outcome=err: {e}", self.id),
                        ),
                    }
                    return other;
                }
            }
        }
    }

    /// Waits for a direct delivery with transaction id `txn`.
    fn await_delivery(&self, txn: u64) -> Option<CachedDoc> {
        let deadline = Instant::now() + DELIVERY_TIMEOUT;
        let mut deliveries = self.state.deliveries.lock();
        loop {
            if let Some(doc) = deliveries.remove(&txn) {
                return Some(doc);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            self.state
                .delivered
                .wait_for(&mut deliveries, deadline - now);
        }
    }

    fn fetch_via_proxy(
        &self,
        url: &str,
        bypass: bool,
        trace: TraceId,
        root: SpanId,
    ) -> Result<FetchResult, ProxyError> {
        let mut req = Message::new(format!("GET {url} BAPS/1.0"))
            .header("Client", self.id.to_string())
            .header("Trace-Id", trace.to_string());
        if !root.is_none() {
            // The root span parents every proxy-side span of this request.
            req = req.header("Span-Id", root.to_string());
        }
        let notices: Vec<String> = std::mem::take(&mut *self.pending_evictions.lock());
        if !notices.is_empty() {
            req = req.header("Evicted", notices.join(" "));
        }
        if bypass {
            req = req.header("Bypass-Peers", "1");
        }
        let reply = match self.roundtrip(req) {
            Ok(reply) => reply,
            Err(e) => {
                // The notices may not have reached the proxy: requeue them
                // exactly once. The proxy's invalidation handling is
                // idempotent too (a replayed notice is counted as stale),
                // but deduplicating here keeps the queue bounded when the
                // same request fails repeatedly.
                self.requeue_evictions(notices);
                return Err(e);
            }
        };
        match response_code(&reply) {
            Some(status::OK) => {}
            Some(status::NOT_FOUND) => return Err(ProxyError::NotFound(url.to_owned())),
            Some(code @ (status::SERVER_ERROR | status::UNAVAILABLE)) => {
                return Err(ProxyError::Unavailable(code))
            }
            other => {
                return Err(ProxyError::Protocol(format!(
                    "unexpected proxy response {other:?}: {}",
                    reply.start
                )))
            }
        }
        let source = match reply.get("X-Source") {
            Some("proxy") => Source::Proxy,
            Some("disk") => Source::ProxyDisk,
            Some("peer") => Source::Peer,
            Some("origin") => Source::Origin,
            Some("peer-direct") => {
                // Direct-forward mode: the body arrives out of band on our
                // peer port; await it by transaction id.
                let txn: u64 = reply
                    .get("Txn")
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| ProxyError::Protocol("peer-direct without txn".into()))?;
                let doc = self
                    .await_delivery(txn)
                    .ok_or(ProxyError::DeliveryTimeout)?;
                self.verify_traced(trace, root, url, &doc.body, &doc.watermark)?;
                let evicted = self.state.cache.lock().insert(url, doc.clone());
                self.note_stored(url, evicted);
                return Ok(FetchResult {
                    body: doc.body,
                    source: Source::Peer,
                });
            }
            other => return Err(ProxyError::Protocol(format!("bad X-Source: {other:?}"))),
        };
        let watermark = reply
            .get("X-Watermark")
            .ok_or_else(|| ProxyError::Protocol("missing watermark".into()))
            .and_then(|h| Watermark::from_hex(h).map_err(ProxyError::Integrity))?;
        self.verify_traced(trace, root, url, &reply.body, &watermark)?;

        // Cache the verified copy; queue eviction notices for the next
        // request instead of spending a round trip per victim now.
        let evicted = self.state.cache.lock().insert(
            url,
            CachedDoc {
                body: reply.body.clone(),
                watermark,
            },
        );
        self.note_stored(url, evicted);
        Ok(FetchResult {
            body: reply.body,
            source,
        })
    }

    /// Reconciles the pending-eviction queue after storing `url` in the
    /// browser cache: a queued notice for `url` itself is now stale (this
    /// client holds the document again, and the proxy re-indexed it when
    /// serving) and is cancelled, and the insert's victims are queued
    /// exactly once even when a replayed requeue already listed them.
    fn note_stored(&self, url: &str, evicted: Vec<String>) {
        let mut pending = self.pending_evictions.lock();
        pending.retain(|u| u != url);
        for victim in evicted {
            if victim != url && !pending.contains(&victim) {
                pending.push(victim);
            }
        }
    }

    /// Puts notices back on the queue after a failed request, skipping any
    /// that a concurrent fetch already re-queued.
    fn requeue_evictions(&self, notices: Vec<String>) {
        if notices.is_empty() {
            return;
        }
        let mut pending = self.pending_evictions.lock();
        for url in notices {
            if !pending.contains(&url) {
                pending.push(url);
            }
        }
    }

    /// Test hook: the eviction notices queued to ride the next GET.
    pub fn pending_eviction_notices(&self) -> Vec<String> {
        self.pending_evictions.lock().clone()
    }

    /// §6.1 watermark verification wrapped in a `verify` span.
    ///
    /// Like the proxy's wait-for-shard span, a routine fast verification
    /// is not worth a ring event on every request; the span is recorded
    /// when the verdict is a mismatch or the check ran slow — the two
    /// cases a dump reader would look for.
    fn verify_traced(
        &self,
        trace: TraceId,
        root: SpanId,
        url: &str,
        body: &Body,
        watermark: &Watermark,
    ) -> Result<(), ProxyError> {
        const SLOW_VERIFY: Duration = Duration::from_micros(250);
        let t_verify = Instant::now();
        let verdict = verify_document(&self.proxy_key, body, watermark);
        let verify_time = t_verify.elapsed();
        if verdict.is_err() || verify_time > SLOW_VERIFY || !root.is_none() {
            let vspan = if root.is_none() {
                SpanId::NONE
            } else {
                SpanId::mint()
            };
            self.obs.recorder.record_hop(
                trace,
                vspan,
                root,
                EventKind::Verify,
                verify_time,
                format!(
                    "client={} url={url} outcome={}",
                    self.id,
                    if verdict.is_ok() { "ok" } else { "MISMATCH" }
                ),
            );
        }
        verdict
            .map(|_| ())
            .map_err(|_| ProxyError::Integrity(CryptoError::WatermarkMismatch))
    }

    /// Tells the proxy this client no longer caches `url`.
    fn invalidate(&self, url: &str) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("INVALIDATE {url} BAPS/1.0"))
                .header("Client", self.id.to_string()),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol("invalidate rejected".into()));
        }
        Ok(())
    }

    /// Evicts `url` locally and notifies the proxy (models the user
    /// clearing cache entries).
    pub fn evict(&self, url: &str) -> Result<bool, ProxyError> {
        let present = self.state.cache.lock().remove(url);
        if present {
            self.invalidate(url)?;
        }
        Ok(present)
    }

    /// Discards `url` from the browser cache because its content changed
    /// upstream, queueing a piggybacked eviction notice instead of a
    /// synchronous INVALIDATE round trip. During an invalidation storm
    /// this is what keeps wire traffic bounded: N clients discarding a
    /// doc cost zero extra messages (the notices ride the next GETs),
    /// versus N INVALIDATE round trips. Returns whether it was cached.
    pub fn discard(&self, url: &str) -> bool {
        let present = self.state.cache.lock().remove(url);
        if present {
            self.requeue_evictions(vec![url.to_string()]);
        }
        present
    }

    /// Publisher-side invalidation: tells the proxy `url`'s content
    /// changed at the origin, so the proxy must drop its memory replica
    /// and expire (not delete) its disk replica — the next read
    /// revalidates with `If-Digest`. One wire message per changed doc,
    /// regardless of how many clients hold replicas; the holders clean up
    /// via [`ClientAgent::discard`] + piggybacked notices.
    pub fn publish_invalidate(&self, url: &str) -> Result<(), ProxyError> {
        let reply = self.roundtrip(
            Message::new(format!("INVALIDATE {url} BAPS/1.0"))
                .header("Client", self.id.to_string())
                .header("Purge", "1"),
        )?;
        if response_code(&reply) != Some(status::OK) {
            return Err(ProxyError::Protocol("invalidate rejected".into()));
        }
        Ok(())
    }

    /// One request/response against the proxy.
    ///
    /// With keep-alive on, the persistent connection is dialed lazily on
    /// first use and reused for every subsequent message. If the proxy
    /// drops it between requests (restart, [`drop_connections`], idle
    /// reaping), the exchange fails or returns a clean EOF; the client
    /// then redials once and replays the message. Only an error on a
    /// *fresh* connection propagates, so a mid-session connection loss is
    /// invisible to callers.
    ///
    /// [`drop_connections`]: crate::proxy::ProxyServer::drop_connections
    fn roundtrip(&self, msg: Message) -> Result<Message, ProxyError> {
        let verb = verb_index(msg.tokens().first());
        let t_verb = Instant::now();
        let result = self.roundtrip_inner(&msg);
        self.obs.verbs.record(verb, t_verb.elapsed());
        result
    }

    /// Dials the proxy, recording the dial as a span of `trace` (a causal
    /// child of `parent` when the request carries a sampled span tree).
    fn dial_traced(&self, trace: TraceId, parent: SpanId, reason: &str) -> io::Result<ProxyConn> {
        let t_dial = Instant::now();
        let conn = ProxyConn::dial(self.proxy_addr, self.config.proxy_deadline);
        let dspan = if parent.is_none() {
            SpanId::NONE
        } else {
            SpanId::mint()
        };
        self.obs.recorder.record_hop(
            trace,
            dspan,
            parent,
            EventKind::Dial,
            t_dial.elapsed(),
            format!(
                "client={} reason={reason} outcome={}",
                self.id,
                if conn.is_ok() { "ok" } else { "err" }
            ),
        );
        conn
    }

    fn roundtrip_inner(&self, msg: &Message) -> Result<Message, ProxyError> {
        // EOF before a reply is a transport failure (restart, drop), not a
        // protocol violation — callers may retry it.
        fn hung_up() -> ProxyError {
            ProxyError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "proxy closed connection",
            ))
        }
        let trace = msg
            .get("Trace-Id")
            .and_then(|h| h.parse().ok())
            .unwrap_or(TraceId::NONE);
        let parent = msg
            .get("Span-Id")
            .and_then(|h| h.parse().ok())
            .unwrap_or(SpanId::NONE);
        if !self.keep_alive.load(Ordering::Acquire) {
            let mut conn = self.dial_traced(trace, parent, "one-shot")?;
            return conn.exchange(msg)?.ok_or_else(hung_up);
        }
        let mut guard = self.proxy_conn.lock();
        let reused = guard.is_some();
        if guard.is_none() {
            *guard = Some(self.dial_traced(trace, parent, "first-use")?);
        }
        let conn = guard.as_mut().expect("connection dialed above");
        match conn.exchange(msg) {
            Ok(Some(reply)) => Ok(reply),
            // An error or EOF on a reused connection means it went stale
            // while idle: reconnect and replay the request once.
            Ok(None) | Err(_) if reused => {
                *guard = None;
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                let mut conn = self.dial_traced(trace, parent, "reconnect")?;
                // A dropped connection may mean the proxy restarted and
                // lost its in-memory registrations: re-introduce this
                // client's peer port before replaying, so peer fetches
                // keep finding it. REGISTER is idempotent — against a
                // merely-reaped connection it just refreshes the address.
                if !matches!(msg.tokens().first(), Some(&"REGISTER")) {
                    let reg = Message::new(format!("REGISTER {} BAPS/1.0", self.peer_addr.port()))
                        .header("Client", self.id.to_string());
                    match conn.exchange(&reg)? {
                        Some(reply) if response_code(&reply) == Some(status::OK) => {}
                        _ => return Err(hung_up()),
                    }
                }
                let reply = conn.exchange(msg)?.ok_or_else(hung_up)?;
                *guard = Some(conn);
                Ok(reply)
            }
            Ok(None) => {
                *guard = None;
                Err(hung_up())
            }
            Err(e) => {
                *guard = None;
                Err(e.into())
            }
        }
    }

    /// Stops the peer-serving threads and closes the proxy connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::AcqRel) {
            return;
        }
        // Close the keep-alive proxy connection so the proxy-side worker
        // serving it is freed.
        *self.proxy_conn.lock() = None;
        // Wake the blocking accept; the acceptor hands the pool back.
        let _ = TcpStream::connect(self.peer_addr);
        if let Some(handle) = self.handle.take() {
            if let Ok(pool) = handle.join() {
                pool.shutdown();
            }
        }
    }
}

impl Drop for ClientAgent {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Applies a tamper mode to a document about to be served to a peer:
/// returns the (possibly corrupted) body and watermark hex to send. The
/// honest path shares the cached body; only the corrupting modes copy.
fn tampered(mode: TamperMode, body: &Body, watermark_hex: String) -> (Body, String) {
    let mut hex = watermark_hex;
    let body = match mode {
        TamperMode::Honest => Arc::clone(body),
        TamperMode::FlipByte => {
            let mut bytes = body.to_vec();
            if let Some(b) = bytes.first_mut() {
                *b ^= 0xff;
            }
            bytes.into()
        }
        TamperMode::Truncate => {
            let half = body.len() / 2;
            Body::from(&body[..half])
        }
        TamperMode::ForgeWatermark => {
            // Swap the first hex digit for a different one: still parses
            // as a watermark, but verifies against nothing.
            let forged = if hex.starts_with('0') { "1" } else { "0" };
            hex.replace_range(0..1, forged);
            Arc::clone(body)
        }
    };
    (body, hex)
}

/// Serves PEERGET requests from this client's browser cache. The request
/// carries only a transaction id — the peer never learns who is asking.
///
/// When a fault plan is installed, exactly one fault draw happens per
/// served PEERGET/PUSH (never for DELIVER or malformed requests):
/// `PeerDrop` closes the connection without replying, `PeerRefuse`
/// answers 410 as if the document were gone, and the wire faults
/// (stall/truncate/corrupt) distort the otherwise-correct reply via
/// [`write_reply_with_fault`].
fn serve_peer(stream: TcpStream, state: &ClientState) -> io::Result<()> {
    // Dialers send their request immediately; an idle connection is a
    // stalled or dead dialer that must not pin this worker forever.
    stream.set_read_timeout(Some(PEER_SERVE_DEADLINE))?;
    stream.set_write_timeout(Some(PEER_SERVE_DEADLINE))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    while let Some(msg) = read_message(&mut reader)? {
        let tokens = msg.tokens();
        // The proxy forwards the requester's trace id on PEERGET/PUSH and
        // the pushing peer forwards it on DELIVER, so peer-side spans join
        // the same trace as the client's fetch.
        let trace = msg
            .get("Trace-Id")
            .and_then(|h| h.parse().ok())
            .unwrap_or(TraceId::NONE);
        // For sampled traces the dialer (the proxy on PEERGET/PUSH, the
        // pushing peer on DELIVER) forwards its own hop span; our serve
        // span attaches under it, stitching the tree across processes.
        let parent = msg
            .get("Span-Id")
            .and_then(|h| h.parse().ok())
            .unwrap_or(SpanId::NONE);
        // Fault decisions apply only to requests we serve *to* peers.
        let faultable = matches!(tokens.first(), Some(&"PEERGET") | Some(&"PUSH"));
        let fault = match (faultable, state.faults.as_deref()) {
            (true, Some(plan)) => plan.peer_fault(),
            _ => None,
        };
        if fault == Some(FaultKind::PeerDrop) {
            // Vanish mid-conversation: the dialer sees an abrupt EOF.
            return Ok(());
        }
        let t_serve = Instant::now();
        let serve_span = if parent.is_none() {
            SpanId::NONE
        } else {
            SpanId::mint()
        };
        let reply = match tokens.as_slice() {
            _ if fault == Some(FaultKind::PeerRefuse) => {
                // Claim the document is gone even though we may hold it.
                response(status::GONE, "Gone")
            }
            ["PEERGET", url, "BAPS/1.0"] => {
                // Clone the handle out so the cache lock is dropped before
                // the reply is built and written.
                let doc = state.cache.lock().get(url).cloned();
                let reply = match doc {
                    Some(doc) => {
                        state.peer_serves.fetch_add(1, Ordering::Relaxed);
                        let (body, hex) =
                            tampered(*state.tamper.lock(), &doc.body, doc.watermark.to_hex());
                        response(status::OK, "OK")
                            .header("X-Watermark", hex)
                            .with_body(body)
                    }
                    None => response(status::GONE, "Gone"),
                };
                state.recorder.record_hop(
                    trace,
                    serve_span,
                    parent,
                    EventKind::PeerServe,
                    t_serve.elapsed(),
                    format!(
                        "client={} verb=PEERGET url={url} outcome={}",
                        state.id,
                        if response_code(&reply) == Some(status::OK) {
                            "ok"
                        } else {
                            "gone"
                        }
                    ),
                );
                reply
            }
            ["PUSH", url, "BAPS/1.0"] => {
                // Direct-forward order from the proxy: push the document to
                // the requester's delivery address before acknowledging.
                let txn = msg.get("Txn").map(str::to_owned);
                let target = msg.get("Target").map(str::to_owned);
                let reply = match (txn, target, state.cache.lock().get(url).cloned()) {
                    (Some(txn), Some(target), Some(doc)) => {
                        state.peer_serves.fetch_add(1, Ordering::Relaxed);
                        let (body, hex) =
                            tampered(*state.tamper.lock(), &doc.body, doc.watermark.to_hex());
                        match deliver_to(&target, url, &txn, &hex, body, trace, serve_span) {
                            Ok(()) => response(status::OK, "OK"),
                            Err(_) => response(status::GONE, "Delivery Failed"),
                        }
                    }
                    (_, _, None) => response(status::GONE, "Gone"),
                    _ => response(status::BAD_REQUEST, "Bad Request"),
                };
                state.recorder.record_hop(
                    trace,
                    serve_span,
                    parent,
                    EventKind::PeerServe,
                    t_serve.elapsed(),
                    format!(
                        "client={} verb=PUSH url={url} outcome={}",
                        state.id,
                        if response_code(&reply) == Some(status::OK) {
                            "ok"
                        } else {
                            "err"
                        }
                    ),
                );
                reply
            }
            ["DELIVER", url, "BAPS/1.0"] => {
                // Incoming direct delivery for one of our own requests.
                let parsed = msg.get("Txn").and_then(|t| t.parse::<u64>().ok()).zip(
                    msg.get("X-Watermark")
                        .and_then(|h| Watermark::from_hex(h).ok()),
                );
                match parsed {
                    Some((txn, watermark)) => {
                        state.deliveries.lock().insert(
                            txn,
                            CachedDoc {
                                body: msg.body.clone(),
                                watermark,
                            },
                        );
                        state.delivered.notify_all();
                        state.recorder.record_hop(
                            trace,
                            serve_span,
                            parent,
                            EventKind::Deliver,
                            Duration::ZERO,
                            format!("client={} url={url} txn={txn}", state.id),
                        );
                        response(status::OK, "OK")
                    }
                    None => response(status::BAD_REQUEST, "Bad Request"),
                }
            }
            _ => response(status::BAD_REQUEST, "Bad Request"),
        };
        let stall = state
            .faults
            .as_deref()
            .map(FaultPlan::stall)
            .unwrap_or_default();
        if !write_reply_with_fault(&mut writer, &reply, fault, stall)? {
            return Ok(());
        }
    }
    Ok(())
}

/// Connects to a requester's delivery address and pushes the document.
#[allow(clippy::too_many_arguments)]
fn deliver_to(
    target: &str,
    url: &str,
    txn: &str,
    watermark_hex: &str,
    body: Body,
    trace: TraceId,
    span: SpanId,
) -> io::Result<()> {
    let addr: SocketAddr = target
        .parse()
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, format!("bad target: {e}")))?;
    let stream = TcpStream::connect_timeout(&addr, DELIVERY_TIMEOUT)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(DELIVERY_TIMEOUT))?;
    let mut writer = stream;
    let mut msg = Message::new(format!("DELIVER {url} BAPS/1.0"))
        .header("Txn", txn)
        .header("X-Watermark", watermark_hex)
        .header("Trace-Id", trace.to_string());
    if !span.is_none() {
        // The pushing peer's serve span parents the requester's deliver
        // span.
        msg = msg.header("Span-Id", span.to_string());
    }
    write_message(&mut writer, &msg.with_body(body))
}
